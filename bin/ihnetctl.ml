(* ihnetctl — operator CLI for the simulated manageable intra-host
   network: topology inspection, ihping/ihtrace/ihperf/ihdump
   diagnostics, configuration checking and heartbeat runs.

   Examples:
     dune exec bin/ihnetctl.exe -- topo --preset dgx
     dune exec bin/ihnetctl.exe -- ping nic0 dimm0.0.0 -c 20
     dune exec bin/ihnetctl.exe -- trace ext gpu0 --load
     dune exec bin/ihnetctl.exe -- perf gpu0 ssd0
     dune exec bin/ihnetctl.exe -- check --ddio off --mps 128
     dune exec bin/ihnetctl.exe -- dump nic0 pciesw0 --load
     dune exec bin/ihnetctl.exe -- heartbeat --degrade rp0.0:pciesw0 *)

open Cmdliner
module E = Ihnet_engine
module T = Ihnet_topology
module U = Ihnet_util
module W = Ihnet_workload
module Mon = Ihnet_monitor
module R = Ihnet_manager
module Rec = Ihnet_record
module F = Ihnet_fleet

(* {1 Common options} *)

let preset_conv =
  let parse = function
    | "two-socket" -> Ok Ihnet.Host.Two_socket
    | "dgx" -> Ok Ihnet.Host.Dgx
    | "epyc" -> Ok Ihnet.Host.Epyc
    | "minimal" -> Ok Ihnet.Host.Minimal
    | s -> Error (`Msg (Printf.sprintf "unknown preset %S (two-socket|dgx|epyc|minimal)" s))
  in
  let print ppf p =
    Format.pp_print_string ppf
      (match p with
      | Ihnet.Host.Two_socket -> "two-socket"
      | Ihnet.Host.Dgx -> "dgx"
      | Ihnet.Host.Epyc -> "epyc"
      | Ihnet.Host.Minimal -> "minimal"
      | Ihnet.Host.Custom _ -> "custom")
  in
  Arg.conv (parse, print)

let preset =
  Arg.(
    value
    & opt preset_conv Ihnet.Host.Two_socket
    & info [ "preset"; "p" ] ~docv:"PRESET" ~doc:"Host topology: two-socket, dgx, epyc, minimal.")

let ddio_flag =
  Arg.(
    value
    & opt (some (enum [ ("on", true); ("off", false) ])) None
    & info [ "ddio" ] ~docv:"on|off" ~doc:"Override the DDIO setting.")

let iommu_flag =
  Arg.(
    value
    & opt (some (enum [ ("on", true); ("off", false) ])) None
    & info [ "iommu" ] ~docv:"on|off" ~doc:"Override the IOMMU setting.")

let mps_flag =
  Arg.(
    value
    & opt (some int) None
    & info [ "mps" ] ~docv:"BYTES" ~doc:"Override the PCIe MaxPayloadSize.")

let topo_file_flag =
  Arg.(
    value
    & opt (some file) None
    & info [ "topo-file"; "f" ] ~docv:"FILE"
        ~doc:"Build the host from a topology spec file instead of a preset (see 'ihnetctl spec').")

let domains_flag =
  Arg.(
    value
    & opt (some int) None
    & info [ "domains" ] ~docv:"N"
        ~doc:
          "Run fabric reallocation on $(docv) OCaml domains (default: \\$IHNET_DOMAINS, else 1). \
           Results are bit-identical for every width; >1 only changes wall-clock time.")

let build_config ddio iommu mps =
  let c = T.Hostconfig.default in
  let c =
    match ddio with
    | Some false -> { c with T.Hostconfig.ddio = T.Hostconfig.Ddio_off }
    | Some true | None -> c
  in
  let c =
    match iommu with
    | Some false -> { c with T.Hostconfig.iommu = T.Hostconfig.Iommu_off }
    | Some true | None -> c
  in
  match mps with Some m -> { c with T.Hostconfig.pcie_mps = m } | None -> c

let load_spec_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let text = really_input_string ic n in
  close_in ic;
  match T.Spec.parse text with
  | Ok topo -> topo
  | Error e ->
    Printf.eprintf "%s: %s\n" path e;
    exit 2

let make_host preset topo_file ddio iommu mps domains =
  let preset =
    match topo_file with
    | Some path -> Ihnet.Host.Custom (load_spec_file path)
    | None -> preset
  in
  Ihnet.Host.create ~config:(build_config ddio iommu mps) ?domains preset

let config_term = Term.(const build_config $ ddio_flag $ iommu_flag $ mps_flag)

let host_term =
  Term.(
    const make_host $ preset $ topo_file_flag $ ddio_flag $ iommu_flag $ mps_flag $ domains_flag)

let src_arg = Arg.(required & pos 0 (some string) None & info [] ~docv:"SRC")
let dst_arg = Arg.(required & pos 1 (some string) None & info [] ~docv:"DST")

(* [--load] puts a standard aggressor mix on the fabric so diagnostics
   have something to see. *)
let load_flag =
  Arg.(value & flag & info [ "load" ] ~doc:"Add background load (loopback + trainer) first.")

let apply_load host load =
  if load then begin
    let fab = Ihnet.Host.fabric host in
    (try ignore (W.Rdma.start_loopback fab ~tenant:8 ~nic:"nic0" ()) with Invalid_argument _ -> ());
    (try
       ignore
         (W.Mltrain.start fab
            {
              (W.Mltrain.default_config ~tenant:9 ~gpu:"gpu0" ~data_source:"dimm0.0.0") with
              W.Mltrain.compute_time = 0.0;
            })
     with Invalid_argument _ -> ());
    Ihnet.Host.run_for host (U.Units.ms 2.0)
  end

(* user errors (unknown devices, bad specs) exit with a message, not a
   backtrace *)
let guarded f =
  try f () with
  | Invalid_argument msg | Failure msg ->
    Printf.eprintf "ihnetctl: %s\n" msg;
    exit 1

(* {1 Subcommands} *)

let topo_cmd =
  let dot = Arg.(value & flag & info [ "dot" ] ~doc:"Emit Graphviz DOT instead of a summary.") in
  let run host dot =
    let topo = Ihnet.Host.topology host in
    if dot then print_string (T.Topology.to_dot topo)
    else begin
      print_endline (T.Topology.summary topo);
      Format.printf "config: %a@." T.Hostconfig.pp (T.Topology.config topo);
      List.iter
        (fun (l : T.Link.t) ->
          let name id = (T.Topology.device topo id).T.Device.name in
          Format.printf "  link %-2d %-18s %-10s <-> %-10s %a %a@." l.T.Link.id
            (T.Link.kind_label l.T.Link.kind) (name l.T.Link.a) (name l.T.Link.b)
            U.Units.pp_rate l.T.Link.capacity U.Units.pp_time l.T.Link.base_latency)
        (T.Topology.links topo)
    end
  in
  Cmd.v (Cmd.info "topo" ~doc:"Show the host topology.") Term.(const run $ host_term $ dot)

let ping_cmd =
  let count = Arg.(value & opt int 10 & info [ "c"; "count" ] ~docv:"N" ~doc:"Probes to send.") in
  let run host load src dst count =
    apply_load host load;
    let report =
      Mon.Diagnostics.ping (Ihnet.Host.fabric host) ~src ~dst ~count
        ~interval:(U.Units.us 100.0) ()
    in
    Ihnet.Host.run_for host (U.Units.ms (0.2 *. float_of_int count));
    Format.printf "ihping %s <-> %s: %d sent, %d lost@." src dst report.Mon.Diagnostics.sent
      report.Mon.Diagnostics.lost;
    let r = report.Mon.Diagnostics.rtts in
    if U.Histogram.count r > 0 then
      Format.printf "rtt min/p50/p99/max = %a / %a / %a / %a@." U.Units.pp_time
        (U.Histogram.min_value r) U.Units.pp_time
        (U.Histogram.percentile r 0.5)
        U.Units.pp_time
        (U.Histogram.percentile r 0.99)
        U.Units.pp_time (U.Histogram.max_value r)
  in
  Cmd.v
    (Cmd.info "ping" ~doc:"Probe RTT between two devices (ihping).")
    Term.(const run $ host_term $ load_flag $ src_arg $ dst_arg $ count)

let trace_cmd =
  let run host load src dst =
    apply_load host load;
    Printf.printf "ihtrace %s -> %s:\n" src dst;
    List.iter
      (fun (h : Mon.Diagnostics.trace_hop) ->
        Format.printf "  -> %-12s %-18s class %-4s base %a, now %a (util %.0f%%)@."
          h.Mon.Diagnostics.hop_device h.Mon.Diagnostics.link_kind
          (match h.Mon.Diagnostics.figure1_class with
          | Some c -> Printf.sprintf "(%d)" c
          | None -> "-")
          U.Units.pp_time h.Mon.Diagnostics.base_latency U.Units.pp_time
          h.Mon.Diagnostics.loaded_latency
          (h.Mon.Diagnostics.utilization *. 100.0))
      (Mon.Diagnostics.trace (Ihnet.Host.fabric host) ~src ~dst)
  in
  Cmd.v
    (Cmd.info "trace" ~doc:"Hop-by-hop latency decomposition (ihtrace).")
    Term.(const run $ host_term $ load_flag $ src_arg $ dst_arg)

let perf_cmd =
  let run host load src dst =
    apply_load host load;
    let fab = Ihnet.Host.fabric host in
    let done_ = ref false in
    Mon.Diagnostics.perf fab ~src ~dst ~duration:(U.Units.ms 10.0)
      ~on_done:(fun r ->
        done_ := true;
        Format.printf "ihperf %s -> %s: %a over %a (%a)@." src dst U.Units.pp_bytes
          r.Mon.Diagnostics.bytes_moved U.Units.pp_time r.Mon.Diagnostics.duration
          U.Units.pp_rate r.Mon.Diagnostics.achieved_rate;
        match r.Mon.Diagnostics.bottleneck with
        | Some (link, u) ->
          let topo = Ihnet.Host.topology host in
          let l = T.Topology.link topo link in
          let name id = (T.Topology.device topo id).T.Device.name in
          Format.printf "bottleneck: %s-%s at %.0f%%@." (name l.T.Link.a) (name l.T.Link.b)
            (u *. 100.0)
        | None -> ())
      ();
    Ihnet.Host.run_for host (U.Units.ms 11.0);
    if not !done_ then prerr_endline "perf did not complete (simulation stalled?)"
  in
  Cmd.v
    (Cmd.info "perf" ~doc:"Measure achievable bandwidth (ihperf).")
    Term.(const run $ host_term $ load_flag $ src_arg $ dst_arg)

let dump_cmd =
  let run host load a b =
    apply_load host load;
    let topo = Ihnet.Host.topology host in
    let dev n =
      match T.Topology.device_by_name topo n with
      | Some d -> d.T.Device.id
      | None -> failwith ("no device " ^ n)
    in
    match T.Topology.links_between topo (dev a) (dev b) with
    | [] -> Printf.eprintf "no link between %s and %s\n" a b
    | l :: _ ->
      Printf.printf "ihdump on link %s-%s:\n" a b;
      List.iter
        (fun (c : Mon.Diagnostics.captured_flow) ->
          Format.printf "  flow#%-4d tenant %-3d %-11s %-10s -> %-10s %a@."
            c.Mon.Diagnostics.flow_id c.Mon.Diagnostics.tenant c.Mon.Diagnostics.cls
            c.Mon.Diagnostics.src_dev c.Mon.Diagnostics.dst_dev U.Units.pp_rate
            c.Mon.Diagnostics.rate)
        (Mon.Diagnostics.dump (Ihnet.Host.fabric host) ~link:l.T.Link.id ())
  in
  Cmd.v
    (Cmd.info "dump" ~doc:"Capture the flows crossing a link (ihdump).")
    Term.(const run $ host_term $ load_flag $ src_arg $ dst_arg)

let check_cmd =
  let run preset config =
    let topo =
      match preset with
      | Ihnet.Host.Two_socket -> T.Builder.two_socket_server ~config ()
      | Ihnet.Host.Dgx -> T.Builder.dgx_like ~config ()
      | Ihnet.Host.Epyc -> T.Builder.epyc_like ~config ()
      | Ihnet.Host.Minimal | Ihnet.Host.Custom _ -> T.Builder.minimal ~config ()
    in
    match Mon.Anomaly.check_configuration topo with
    | [] -> print_endline "configuration clean: no findings"
    | findings ->
      List.iter (Printf.printf "finding: %s\n") findings;
      exit 1
  in
  Cmd.v
    (Cmd.info "check" ~doc:"Static misconfiguration checks.")
    Term.(const run $ preset $ config_term)

let heartbeat_cmd =
  let degrade =
    Arg.(
      value
      & opt (some (pair ~sep:':' string string)) None
      & info [ "degrade" ] ~docv:"DEVA:DEVB"
          ~doc:"Silently degrade the link between two devices mid-run.")
  in
  let run host degrade =
    let fab = Ihnet.Host.fabric host in
    let topo = Ihnet.Host.topology host in
    let hb = Ihnet.Host.start_heartbeats host () in
    Ihnet.Host.run_for host (U.Units.ms 10.0);
    (match degrade with
    | Some (a, b) -> (
      let dev n =
        match T.Topology.device_by_name topo n with
        | Some d -> d.T.Device.id
        | None -> failwith ("no device " ^ n)
      in
      match T.Topology.links_between topo (dev a) (dev b) with
      | l :: _ ->
        Printf.printf "[injecting +5 us on %s-%s]\n" a b;
        E.Fabric.inject_fault fab l.T.Link.id
          { E.Fault.capacity_factor = 1.0; extra_latency = U.Units.us 5.0; loss_prob = 0.0 }
      | [] -> failwith "no such link")
    | None -> ());
    Ihnet.Host.run_for host (U.Units.ms 10.0);
    Printf.printf "rounds: %d, failing pairs: %d\n" (Mon.Heartbeat.rounds hb)
      (List.length (Mon.Heartbeat.failing_pairs hb));
    (match Mon.Heartbeat.first_detection hb with
    | Some at -> Format.printf "first detection at %a@." U.Units.pp_time at
    | None -> print_endline "no anomaly detected");
    List.iter
      (fun (s : Mon.Heartbeat.suspect) ->
        let l = T.Topology.link topo s.Mon.Heartbeat.link in
        let name id = (T.Topology.device topo id).T.Device.name in
        Printf.printf "suspect: %s-%s (score %.2f)\n" (name l.T.Link.a) (name l.T.Link.b)
          s.Mon.Heartbeat.score)
      (Mon.Heartbeat.localize hb)
  in
  Cmd.v
    (Cmd.info "heartbeat" ~doc:"Run the heartbeat mesh; optionally inject a silent fault.")
    Term.(const run $ host_term $ degrade)

let heal_cmd =
  let gbps =
    Arg.(value & opt float 80.0 & info [ "gbps" ] ~docv:"GBPS" ~doc:"Victim pipe guarantee.")
  in
  let fault_link =
    Arg.(
      value
      & opt (some (pair ~sep:':' string string)) None
      & info [ "fault" ] ~docv:"DEVA:DEVB"
          ~doc:"Link to degrade (default: the second hop of the victim's placed path).")
  in
  let factor =
    Arg.(
      value
      & opt float 0.05
      & info [ "factor" ] ~docv:"F" ~doc:"Fault capacity factor (0 = link down).")
  in
  let silent =
    Arg.(
      value & flag
      & info [ "silent" ]
          ~doc:"Treat the fault as silent: ignore the fabric announcement and rely on heartbeat \
                localization to open the case.")
  in
  let flap =
    Arg.(
      value
      & opt (some int) None
      & info [ "flap" ] ~docv:"N" ~doc:"Toggle the fault N times at 1 ms period instead of \
                                        injecting it once (exercises flap damping).")
  in
  let ms =
    Arg.(value & opt float 20.0 & info [ "ms" ] ~docv:"MS" ~doc:"Milliseconds to let the loop run.")
  in
  let run host src dst gbps fault_link factor silent flap ms =
    let fab = Ihnet.Host.fabric host in
    let topo = Ihnet.Host.topology host in
    let mgr = Ihnet.Host.enable_manager host () in
    let rate = U.Units.gbps gbps in
    let p =
      match R.Manager.submit mgr (R.Intent.pipe ~tenant:1 ~src ~dst ~rate) with
      | Ok [ p ] -> p
      | Ok _ -> failwith "expected one placement"
      | Error e -> failwith ("intent rejected: " ^ R.Manager.error_to_string e)
    in
    let f =
      E.Fabric.start_flow fab ~tenant:1 ~demand:rate ~path:p.R.Placement.path
        ~size:E.Flow.Unbounded ()
    in
    ignore (R.Manager.attach mgr f);
    let config =
      { R.Remediation.default_config with R.Remediation.use_fault_events = not silent }
    in
    let rem =
      Ihnet.Host.enable_remediation host ~config
        ~wiring:{ Ihnet.Host.default_wiring with Ihnet.Host.heartbeat = silent }
        ()
    in
    (* heartbeat needs warm-up rounds to learn RTT baselines *)
    Ihnet.Host.run_for host (U.Units.ms (if silent then 10.0 else 2.0));
    let tenant_rate () =
      E.Fabric.refresh fab;
      List.fold_left
        (fun acc (g : E.Flow.t) ->
          if g.E.Flow.tenant = 1 && g.E.Flow.cls = E.Flow.Payload then acc +. g.E.Flow.rate
          else acc)
        0.0 (E.Fabric.active_flows fab)
    in
    let pre = tenant_rate () in
    let bad =
      match fault_link with
      | Some (a, b) -> (
        let dev n =
          match T.Topology.device_by_name topo n with
          | Some d -> d.T.Device.id
          | None -> failwith ("no device " ^ n)
        in
        match T.Topology.links_between topo (dev a) (dev b) with
        | l :: _ -> l.T.Link.id
        | [] -> failwith "no such link")
      | None -> (
        match p.R.Placement.path.T.Path.hops with
        | _ :: h :: _ | [ h ] -> h.T.Path.link.T.Link.id
        | [] -> failwith "victim path has no hops")
    in
    let l = T.Topology.link topo bad in
    let name id = (T.Topology.device topo id).T.Device.name in
    let fault = E.Fault.degrade ~capacity_factor:factor () in
    (match flap with
    | Some n ->
      Printf.printf "[flapping %s-%s x%d at 1 ms]\n" (name l.T.Link.a) (name l.T.Link.b) n;
      E.Fabric.flap_link fab bad fault ~period:(U.Units.ms 1.0) ~toggles:n
    | None ->
      Printf.printf "[degrading %s-%s to %.0f%% capacity%s]\n" (name l.T.Link.a)
        (name l.T.Link.b) (factor *. 100.0)
        (if silent then ", silently" else "");
      E.Fabric.inject_fault fab bad fault);
    let t0 = Ihnet.Host.now host in
    Ihnet.Host.run_for host (U.Units.ms ms);
    let post = tenant_rate () in
    Format.printf "victim: %a guaranteed, %a before fault, %a after the loop@." U.Units.pp_rate
      rate U.Units.pp_rate pre U.Units.pp_rate post;
    (match R.Remediation.time_to_detect rem bad ~since:t0 with
    | Some d -> Format.printf "time-to-detect: %a@." U.Units.pp_time d
    | None -> print_endline "time-to-detect: (case not opened)");
    (match R.Remediation.time_to_recover rem bad with
    | Some d -> Format.printf "time-to-recover: %a@." U.Units.pp_time d
    | None -> print_endline "time-to-recover: (not recovered)");
    Format.printf "%a" R.Remediation.pp_status rem;
    print_endline "timeline:";
    Format.printf "%a" R.Remediation.pp_timeline rem;
    Format.printf "%a" R.Slo.pp (R.Slo.check mgr)
  in
  Cmd.v
    (Cmd.info "heal"
       ~doc:"Inject a fault on a guaranteed pipe and watch the remediation loop recover it.")
    Term.(const run $ host_term $ src_arg $ dst_arg $ gbps $ fault_link $ factor $ silent $ flap $ ms)

let scenario_cmd =
  let name_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"NAME" ~doc:"Scenario name.")
  in
  let ms =
    Arg.(value & opt float 20.0 & info [ "ms" ] ~docv:"MS" ~doc:"Simulated milliseconds to run.")
  in
  let list_flag =
    Arg.(value & flag & info [ "list" ] ~doc:"List scenario names and exit.")
  in
  let protect =
    Arg.(
      value
      & opt (some float) None
      & info [ "protect" ] ~docv:"GBPS"
          ~doc:"Mid-run, give tenant 1 an end-to-end guarantee of this many Gbit/s and show \
                the before/after.")
  in
  let run host list_only name ms protect =
    if list_only then
      List.iter (fun (n, d) -> Printf.printf "%-14s %s\n" n d) W.Scenario.all
    else
      match W.Scenario.find name with
      | None ->
        Printf.eprintf "unknown scenario %S; try --list\n" name;
        exit 1
      | Some make ->
        let h = make (Ihnet.Host.fabric host) in
        Printf.printf "scenario %s: %s\n" h.W.Scenario.name h.W.Scenario.describe;
        List.iter (fun (id, role) -> Printf.printf "  tenant %d: %s\n" id role)
          h.W.Scenario.tenants;
        Ihnet.Host.run_for host (U.Units.ms ms);
        Printf.printf "after %.0f ms:\n" ms;
        List.iter (fun (k, v) -> Printf.printf "  %-22s %s\n" k v) (h.W.Scenario.metrics ());
        (match protect with
        | None -> ()
        | Some gbps ->
          let mgr = Ihnet.Host.enable_manager host () in
          let rate = U.Units.gbps gbps in
          let intent =
            {
              (R.Intent.pipe ~tenant:1 ~src:"ext" ~dst:"socket0" ~rate) with
              R.Intent.targets =
                [
                  R.Intent.Pipe { src = "ext"; dst = "socket0"; rate };
                  R.Intent.Pipe { src = "socket0"; dst = "ext"; rate };
                ];
            }
          in
          (match R.Manager.submit mgr intent with
          | Ok _ -> Printf.printf "\n[tenant 1 protected with a %.0f Gbps pipe]\n" gbps
          | Error e -> Printf.printf "\n[intent rejected: %s]\n" (R.Manager.error_to_string e));
          Ihnet.Host.run_for host (U.Units.ms ms);
          Printf.printf "after another %.0f ms under management:\n" ms;
          List.iter (fun (k, v) -> Printf.printf "  %-22s %s\n" k v) (h.W.Scenario.metrics ());
          Format.printf "%a" R.Slo.pp (R.Slo.check mgr));
        h.W.Scenario.stop ()
  in
  Cmd.v
    (Cmd.info "scenario" ~doc:"Run a canned workload scenario and print its metrics.")
    Term.(const run $ host_term $ list_flag $ name_arg $ ms $ protect)

let monitor_cmd =
  let ms =
    Arg.(value & opt float 10.0 & info [ "ms" ] ~docv:"MS" ~doc:"Simulated milliseconds to sample.")
  in
  let period_us =
    Arg.(value & opt float 100.0 & info [ "period" ] ~docv:"US" ~doc:"Sampling period, microseconds.")
  in
  let series_filter =
    Arg.(
      value
      & opt (some string) None
      & info [ "series" ] ~docv:"PREFIX" ~doc:"Only dump series whose name starts with PREFIX.")
  in
  let run host load ms period_us series_filter =
    apply_load host load;
    let sampler =
      Mon.Sampler.start (Ihnet.Host.fabric host)
        {
          (Mon.Sampler.default_config ()) with
          Mon.Sampler.period = U.Units.us period_us;
          fidelity = Mon.Counter.Oracle;
        }
    in
    Ihnet.Host.run_for host (U.Units.ms ms);
    let tm = Mon.Sampler.telemetry sampler in
    let series =
      match series_filter with
      | None -> None
      | Some prefix ->
        Some
          (List.filter
             (fun n ->
               String.length n >= String.length prefix
               && String.sub n 0 (String.length prefix) = prefix)
             (Mon.Telemetry.series_names tm))
    in
    print_string (Mon.Telemetry.to_csv ?series tm);
    Mon.Sampler.stop sampler
  in
  Cmd.v
    (Cmd.info "monitor" ~doc:"Sample the fabric for a while and dump telemetry as CSV.")
    Term.(const run $ host_term $ load_flag $ ms $ period_us $ series_filter)

let report_cmd =
  let fidelity =
    Arg.(
      value
      & opt (enum [ ("hardware", `Hw); ("software", `Sw); ("oracle", `Oracle) ]) `Oracle
      & info [ "fidelity" ] ~docv:"LEVEL" ~doc:"Counter fidelity: hardware, software, oracle.")
  in
  let run host load fidelity =
    apply_load host load;
    let fid =
      match fidelity with
      | `Hw -> Mon.Counter.Hardware { max_read_hz = 10_000.0 }
      | `Sw -> Mon.Counter.Software
      | `Oracle -> Mon.Counter.Oracle
    in
    let counter = Mon.Counter.create (Ihnet.Host.fabric host) ~fidelity:fid in
    let report = Mon.Health.collect counter ~tenants:[ 1; 2; 8; 9 ] () in
    Format.printf "%a" Mon.Health.pp report
  in
  Cmd.v
    (Cmd.info "report" ~doc:"One-shot health report (congestion, talkers, DDIO).")
    Term.(const run $ host_term $ load_flag $ fidelity)

let plan_cmd =
  let pipes =
    Arg.(
      value
      & opt_all (t3 ~sep:':' string string float) []
      & info [ "pipe" ] ~docv:"SRC:DST:GBPS" ~doc:"A pipe intent (repeatable).")
  in
  let hoses =
    Arg.(
      value
      & opt_all (t3 ~sep:':' string float float) []
      & info [ "hose" ] ~docv:"DEV:IN_GBPS:OUT_GBPS" ~doc:"A hose intent (repeatable).")
  in
  let headroom =
    Arg.(value & opt float 0.9 & info [ "headroom" ] ~docv:"F" ~doc:"Reservable fraction per link.")
  in
  let run host pipes hoses headroom =
    let topo = Ihnet.Host.topology host in
    let intents =
      List.mapi
        (fun i (src, dst, gbps) ->
          R.Intent.pipe ~tenant:(i + 1) ~src ~dst ~rate:(U.Units.gbps gbps))
        pipes
      @ List.mapi
          (fun i (endpoint, in_g, out_g) ->
            R.Intent.hose
              ~tenant:(100 + i)
              ~endpoint ~to_host:(U.Units.gbps in_g) ~from_host:(U.Units.gbps out_g))
          hoses
    in
    if intents = [] then begin
      prerr_endline "no intents given; use --pipe/--hose";
      exit 1
    end;
    Printf.printf "deployment: %d intent(s), headroom %.0f%%\n" (List.length intents)
      (headroom *. 100.0);
    if R.Planner.fits topo ~headroom intents then begin
      let s = R.Planner.max_scale topo ~headroom intents in
      Printf.printf "fits: yes (uniform growth room: %.2fx)\n" s;
      print_endline "hottest links after placement:";
      List.iter
        (fun ((l : T.Link.t), ratio) ->
          let name id = (T.Topology.device topo id).T.Device.name in
          Printf.printf "  %-18s %-10s - %-10s %.0f%%\n" (T.Link.kind_label l.T.Link.kind)
            (name l.T.Link.a) (name l.T.Link.b) (ratio *. 100.0))
        (R.Planner.bottlenecks topo ~headroom intents)
    end
    else begin
      let s = R.Planner.max_scale topo ~headroom intents in
      Printf.printf "fits: NO (would fit at %.2fx of the requested rates)\n" s;
      exit 1
    end
  in
  Cmd.v
    (Cmd.info "plan" ~doc:"Capacity-plan a set of intents against a host.")
    Term.(const run $ host_term $ pipes $ hoses $ headroom)

let spec_cmd =
  let run () = print_string T.Spec.example in
  Cmd.v
    (Cmd.info "spec" ~doc:"Print an example topology spec file (for --topo-file).")
    Term.(const run $ const ())

let record_cmd =
  let source =
    Arg.(
      value
      & opt string "e17"
      & info [ "source"; "s" ] ~docv:"SCENARIO"
          ~doc:"Golden scenario to drive and record: e1, e5 or e17.")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE"
          ~doc:"Trace file to write (default: $(i,SCENARIO).trace.jsonl).")
  in
  let regen =
    Arg.(
      value
      & opt (some string) None
      & info [ "regen-golden" ] ~docv:"DIR"
          ~doc:
            "Re-record every golden scenario and rewrite the fingerprint files in $(docv) \
             (test/golden in this repo), instead of recording one trace.")
  in
  let run source out regen =
    match regen with
    | Some dir ->
      List.iter
        (fun (path, (fp : Rec.Golden.fingerprint)) ->
          Printf.printf "%s: %d lines, trace 0x%016Lx\n" path fp.Rec.Golden.g_lines
            fp.Rec.Golden.g_trace)
        (Rec.Golden.regenerate ~dir)
    | None -> (
      match Rec.Golden.find source with
      | None -> failwith (Printf.sprintf "unknown scenario %S (e1|e5|e17)" source)
      | Some sc ->
        let path = match out with Some p -> p | None -> source ^ ".trace.jsonl" in
        Out_channel.with_open_text path (fun oc ->
            let t = Rec.Golden.record ~tee:(Rec.Recorder.channel_sink oc) sc in
            Printf.printf "%s: wrote %d lines (trace fingerprint 0x%016Lx)\n" path
              (1 + List.length t.Rec.Trace.lines)
              (Rec.Trace.fingerprint t)))
  in
  Cmd.v
    (Cmd.info "record" ~doc:"Drive a deterministic scenario with the flight recorder attached.")
    Term.(const run $ source $ out $ regen)

let faults_cmd =
  let file = Arg.(required & pos 0 (some string) None & info [] ~docv:"TRACE") in
  let timeline =
    Arg.(
      value & flag
      & info [ "timeline"; "t" ]
          ~doc:"Also print every fault injection and clear chronologically, not just the final \
                active sets.")
  in
  (* codec types -> engine types, so the listing reuses the engine's
     canonical descriptions instead of duplicating the formatting *)
  let starget_of = function
    | Rec.Trace.Sf_device d -> E.Sensorfault.Device d
    | Rec.Trace.Sf_series s -> E.Sensorfault.Series s
  in
  let sf_of (sf : Rec.Trace.sensor_fault) =
    {
      E.Sensorfault.stuck = sf.Rec.Trace.sf_stuck;
      drift = sf.Rec.Trace.sf_drift;
      drop_prob = sf.Rec.Trace.sf_drop;
      dup_prob = sf.Rec.Trace.sf_dup;
      skew = sf.Rec.Trace.sf_skew;
      probe_loss = sf.Rec.Trace.sf_probe_loss;
      probe_slow = sf.Rec.Trace.sf_probe_slow;
    }
  in
  let fault_label (f : Rec.Trace.fault) =
    let parts =
      (if f.Rec.Trace.capacity_factor < 1.0 then
         [ Printf.sprintf "capacity x%.2f" f.Rec.Trace.capacity_factor ]
       else [])
      @ (if f.Rec.Trace.extra_latency > 0.0 then
           [ Printf.sprintf "+%.0f ns latency" f.Rec.Trace.extra_latency ]
         else [])
      @
      if f.Rec.Trace.loss_prob > 0.0 then
        [ Printf.sprintf "loss %.0f%%" (100.0 *. f.Rec.Trace.loss_prob) ]
      else []
    in
    if parts = [] then "no-op" else String.concat ", " parts
  in
  let run file timeline =
    match Rec.Trace.load file with
    | Error e -> failwith e
    | Ok t ->
      let links : (int, float * Rec.Trace.fault) Hashtbl.t = Hashtbl.create 16 in
      let sensors : (Rec.Trace.starget, float * Rec.Trace.sensor_fault) Hashtbl.t =
        Hashtbl.create 16
      in
      let ev at fmt = Printf.ksprintf (fun s -> if timeline then Printf.printf "%10.0f  %s\n" at s) fmt in
      List.iter
        (function
          | Rec.Trace.Op { at; op } -> (
            match op with
            | Rec.Trace.Inject_fault { link; fault } ->
              Hashtbl.replace links link (at, fault);
              ev at "link %-4d fault: %s" link (fault_label fault)
            | Rec.Trace.Clear_fault link ->
              Hashtbl.remove links link;
              ev at "link %-4d cleared" link
            | Rec.Trace.Clear_all_faults ->
              Hashtbl.reset links;
              ev at "all link faults cleared"
            | Rec.Trace.Inject_sensor_fault { starget; sf } ->
              Hashtbl.replace sensors starget (at, sf);
              ev at "%-12s sensor fault: %s"
                (E.Sensorfault.target_label (starget_of starget))
                (E.Sensorfault.describe (sf_of sf))
            | Rec.Trace.Clear_sensor_fault starget ->
              Hashtbl.remove sensors starget;
              ev at "%-12s sensor cleared" (E.Sensorfault.target_label (starget_of starget))
            | _ -> ())
          | _ -> ())
        t.Rec.Trace.lines;
      if timeline then print_newline ();
      let active_links =
        List.sort compare (Hashtbl.fold (fun l v acc -> (l, v) :: acc) links [])
      in
      let active_sensors =
        List.sort compare (Hashtbl.fold (fun tg v acc -> (tg, v) :: acc) sensors [])
      in
      Printf.printf "trace %s (%s, seed %d): %d link fault(s), %d sensor fault(s) active at end\n"
        file t.Rec.Trace.header.Rec.Trace.label t.Rec.Trace.header.Rec.Trace.seed
        (List.length active_links) (List.length active_sensors);
      List.iter
        (fun (l, (at, f)) ->
          Printf.printf "  link %-4d since %10.0f ns: %s\n" l at (fault_label f))
        active_links;
      List.iter
        (fun (tg, (at, sf)) ->
          Printf.printf "  %-12s since %10.0f ns: %s\n"
            (E.Sensorfault.target_label (starget_of tg))
            at
            (E.Sensorfault.describe (sf_of sf)))
        active_sensors
  in
  Cmd.v
    (Cmd.info "faults"
       ~doc:
         "List the link and sensor faults a recorded trace injects — the active sets at end of \
          trace, with $(b,--timeline) the full chronology.")
    Term.(const run $ file $ timeline)

let replay_cmd =
  let file = Arg.(required & pos 0 (some string) None & info [] ~docv:"TRACE") in
  let perturb_at =
    Arg.(
      value
      & opt (some float) None
      & info [ "perturb-at" ] ~docv:"NS"
          ~doc:
            "Deliberately double the weight of one running flow at $(docv) (trace-relative \
             nanoseconds) during replay — the conformance check must then report a divergence.")
  in
  let run file perturb_at domains =
    let perturb =
      Option.map
        (fun at ->
          ( at,
            fun fab flows ->
              match (flows : E.Flow.t list) with
              | f :: _ -> E.Fabric.set_flow_limits fab f ~weight:(f.E.Flow.weight *. 2.0) ()
              | [] -> () ))
        perturb_at
    in
    match Rec.Trace.load file with
    | Error e -> failwith e
    | Ok t ->
      (* a perturbed replay is a divergence drill: pre-compute the clean
         run's scan chain so the report can name the first bad register,
         not just the first bad epoch *)
      let reference =
        match perturb with
        | None -> None
        | Some _ -> (
          match Rec.Replay.scan_reference ?domains t with Ok r -> Some r | Error _ -> None)
      in
      (match Rec.Replay.run ?perturb ?domains ?reference t with
      | Error e -> failwith e
      | Ok report ->
        Format.printf "%a@." Rec.Replay.pp_report report;
        if not (Rec.Replay.ok report) then exit 1)
  in
  Cmd.v
    (Cmd.info "replay"
       ~doc:"Re-execute a recorded trace on a fresh host and check digests epoch-by-epoch.")
    Term.(const run $ file $ perturb_at $ domains_flag)

let bench_cmd =
  let current =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"CURRENT"
          ~doc:"Freshly measured snapshot (output of $(b,fabric_bench -o) ...).")
  in
  let baseline =
    Arg.(
      required
      & opt (some string) None
      & info [ "compare" ] ~docv:"BASELINE"
          ~doc:"Committed snapshot to compare against (normally the repo's BENCH_fabric.json).")
  in
  let tolerance =
    Arg.(
      value
      & opt float 30.0
      & info [ "tolerance" ] ~docv:"PCT"
          ~doc:
            "Maximum tolerated regression, percent below baseline. Exceeding it on any compared \
             subject exits 1.")
  in
  let only =
    Arg.(
      value
      & opt_all string []
      & info [ "subject" ] ~docv:"NAME"
          ~doc:"Compare only $(docv) (repeatable); default: every subject present in both files.")
  in
  let load_subjects path =
    let json = Rec.Trace.json_of_string (In_channel.with_open_text path In_channel.input_all) in
    match Rec.Trace.field json "subjects" with
    | Rec.Trace.Obj kvs -> List.map (fun (k, v) -> (k, Rec.Trace.as_float v)) kvs
    | _ -> failwith (path ^ ": no \"subjects\" object")
  in
  let run current baseline tolerance only =
    let base = load_subjects baseline and cur = load_subjects current in
    let names =
      match only with
      | [] -> List.filter (fun (n, _) -> List.mem_assoc n cur) base |> List.map fst
      | names ->
        List.iter
          (fun n ->
            if not (List.mem_assoc n base) then
              failwith (Printf.sprintf "%s: no subject %S in baseline" baseline n);
            if not (List.mem_assoc n cur) then
              failwith (Printf.sprintf "%s: no subject %S in current snapshot" current n))
          names;
        names
    in
    if names = [] then failwith "no common subjects to compare";
    Printf.printf "%-28s %12s %12s %9s\n" "subject" "baseline" "current" "delta";
    let worst_over = ref [] in
    List.iter
      (fun n ->
        let b = List.assoc n base and c = List.assoc n cur in
        let delta = if b > 0.0 then 100.0 *. ((c /. b) -. 1.0) else 0.0 in
        let flag = if delta < -.tolerance then " REGRESSION" else "" in
        if delta < -.tolerance then worst_over := (n, delta) :: !worst_over;
        Printf.printf "%-28s %12.1f %12.1f %+8.1f%%%s\n" n b c delta flag)
      names;
    List.iter
      (fun (n, _) ->
        if not (List.mem_assoc n base) then Printf.printf "%-28s %25s\n" n "(new, no baseline)")
      cur;
    match !worst_over with
    | [] -> ()
    | over ->
      Printf.eprintf "bench: %d subject(s) regressed more than %.0f%% below %s\n"
        (List.length over) tolerance baseline;
      exit 1
  in
  Cmd.v
    (Cmd.info "bench"
       ~doc:
         "Compare a fresh fabric_bench snapshot against the committed one, per-subject; exit 1 \
          on a regression beyond the tolerance (the CI bench-regression smoke step).")
    Term.(const run $ current $ baseline $ tolerance $ only)

let latency_cmd =
  let ms =
    Arg.(value & opt float 10.0 & info [ "ms" ] ~docv:"MS" ~doc:"Simulated milliseconds to observe.")
  in
  let link_flag =
    Arg.(
      value & flag
      & info [ "link" ] ~doc:"Also print the per-(link, direction) percentile table.")
  in
  let run host load link ms =
    let fab = Ihnet.Host.fabric host in
    E.Fabric.enable_latency_sketches fab;
    apply_load host load;
    Ihnet.Host.run_for host (U.Units.ms ms);
    (match E.Fabric.flow_latency_sketch fab with
    | Some sk when U.Sketch.count sk > 0 ->
      Format.printf "flow end-to-end latency: %a@." U.Sketch.pp sk
    | Some _ | None ->
      print_endline
        "flow end-to-end latency: no completed flows observed (try --load or a longer --ms)");
    if link then begin
      let topo = Ihnet.Host.topology host in
      let name id = (T.Topology.device topo id).T.Device.name in
      Format.printf "%-4s %-24s %-4s %8s %10s %10s %10s %10s@." "link" "route" "dir" "n" "p50"
        "p99" "p999" "max";
      List.iter
        (fun (l : T.Link.t) ->
          List.iter
            (fun (dir, label) ->
              match E.Fabric.link_latency_sketch fab l.T.Link.id dir with
              | Some sk when U.Sketch.count sk > 0 ->
                let s = U.Sketch.snapshot sk in
                Format.printf "%-4d %-24s %-4s %8d %10s %10s %10s %10s@." l.T.Link.id
                  (Printf.sprintf "%s<->%s" (name l.T.Link.a) (name l.T.Link.b))
                  label s.U.Sketch.s_count
                  (Format.asprintf "%a" U.Units.pp_time s.U.Sketch.s_p50)
                  (Format.asprintf "%a" U.Units.pp_time s.U.Sketch.s_p99)
                  (Format.asprintf "%a" U.Units.pp_time s.U.Sketch.s_p999)
                  (Format.asprintf "%a" U.Units.pp_time s.U.Sketch.s_max)
              | Some _ | None -> ())
            [ (T.Link.Fwd, "fwd"); (T.Link.Rev, "rev") ])
        (T.Topology.links topo)
    end
  in
  Cmd.v
    (Cmd.info "latency"
       ~doc:
         "Run with the always-on latency-sketch plane enabled and print percentile summaries \
          (flow end-to-end roll-up; per-link with $(b,--link)).")
    Term.(const run $ host_term $ load_flag $ link_flag $ ms)

let scan_cmd =
  let ms =
    Arg.(
      value & opt float 10.0
      & info [ "ms" ] ~docv:"MS" ~doc:"Simulated milliseconds to run before scanning.")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE"
          ~doc:"Save the (final) snapshot as JSON, readable back by $(b,scan --diff).")
  in
  let step =
    Arg.(
      value
      & opt (some int) None
      & info [ "step" ] ~docv:"N"
          ~doc:
            "After the run, freeze the fabric and single-step up to $(docv) reallocation \
             epochs, scanning at each boundary.")
  in
  let diff_flag =
    Arg.(
      value & flag
      & info [ "diff" ]
          ~doc:
            "Compare two saved snapshots ($(i,A) $(i,B)) instead of scanning a host; prints the \
             first divergent register and exits 1 if they differ.")
  in
  let all_flag =
    Arg.(
      value & flag
      & info [ "all" ]
          ~doc:"With $(b,--diff): also compare microarchitectural registers (warm-solver and \
                memo counters), not just the architectural contract.")
  in
  let snap_a = Arg.(value & pos 0 (some file) None & info [] ~docv:"A") in
  let snap_b = Arg.(value & pos 1 (some file) None & info [] ~docv:"B") in
  let run host load ms out step diff all a b =
    if diff then begin
      let path = function
        | Some p -> p
        | None -> failwith "scan --diff needs two snapshot files: scan --diff A B"
      in
      let load_snap p =
        match Rec.Scanport.load p with Ok s -> s | Error e -> failwith e
      in
      let sa = load_snap (path a) and sb = load_snap (path b) in
      let scope = if all then `All else `Arch in
      let compared =
        List.length
          (List.filter
             (fun (r : Rec.Scanport.reg) -> all || r.Rec.Scanport.rkind = `Arch)
             sa.Rec.Scanport.s_regs)
      in
      match Rec.Scanport.diff ~scope sa sb with
      | None -> Printf.printf "scan diff: identical (%d registers compared)\n" compared
      | Some m ->
        Format.printf "scan diff: %a@." Rec.Scanport.pp_mismatch m;
        exit 1
    end
    else begin
      apply_load host load;
      Ihnet.Host.run_for host (U.Units.ms ms);
      let snap = Ihnet.Host.scan host in
      Printf.printf "scan: epoch %d, %d registers, digest 0x%016Lx\n"
        snap.Rec.Scanport.s_epoch
        (List.length snap.Rec.Scanport.s_regs)
        snap.Rec.Scanport.s_digest;
      (match step with
      | None -> ()
      | Some n ->
        let fz = Rec.Scanport.freeze (Ihnet.Host.fabric host) in
        let stepped = ref 0 and live = ref true in
        while !live && !stepped < n do
          if Rec.Scanport.step fz 1 = 1 then begin
            incr stepped;
            let s = Ihnet.Host.scan host in
            Printf.printf "step %d: epoch %d, digest 0x%016Lx\n" !stepped
              s.Rec.Scanport.s_epoch s.Rec.Scanport.s_digest
          end
          else live := false
        done;
        if !stepped < n then
          Printf.printf "event queue drained after %d epoch(s)\n" !stepped;
        Rec.Scanport.thaw fz);
      match out with
      | None -> ()
      | Some p ->
        let final = Ihnet.Host.scan host in
        Rec.Scanport.save p final;
        Printf.printf "wrote %s\n" p
    end
  in
  Cmd.v
    (Cmd.info "scan"
       ~doc:
         "Out-of-band scan: dump the fabric's full register chain with zero impact; \
          $(b,--step) single-steps epochs under freeze, $(b,--diff) compares two saved \
          snapshots down to the first divergent register.")
    Term.(
      const run $ host_term $ load_flag $ ms $ out $ step $ diff_flag $ all_flag $ snap_a
      $ snap_b)

let fleet_cmd =
  let hosts_n =
    Arg.(value & opt int 4 & info [ "hosts"; "n" ] ~docv:"N" ~doc:"Fleet size (hosts spawned as host0..hostN-1).")
  in
  let tenants_n =
    Arg.(
      value
      & opt int 6
      & info [ "tenants"; "t" ] ~docv:"T"
          ~doc:"Tenants to place (one 2 Gb/s nic0 to socket0 pipe each).")
  in
  let rounds_n =
    Arg.(value & opt int 30 & info [ "rounds"; "r" ] ~docv:"R" ~doc:"Control rounds to run.")
  in
  let crash_h =
    Arg.(
      value
      & opt (some string) None
      & info [ "crash" ] ~docv:"HOST"
          ~doc:"Crash $(docv) a third of the way in and restart it at two thirds.")
  in
  let partition_h =
    Arg.(
      value
      & opt (some string) None
      & info [ "partition" ] ~docv:"HOST"
          ~doc:"Partition $(docv) a third of the way in and heal it at two thirds.")
  in
  let loss_p =
    Arg.(
      value
      & opt float 0.0
      & info [ "loss" ] ~docv:"P" ~doc:"Drop probability on every control channel.")
  in
  let seed_f = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"S" ~doc:"Controller seed.") in
  let fleet_preset =
    Arg.(
      value
      & opt preset_conv Ihnet.Host.Minimal
      & info [ "preset"; "p" ] ~docv:"PRESET"
          ~doc:"Per-host topology (default minimal; two-socket, dgx, epyc, minimal).")
  in
  let decisions_flag =
    Arg.(value & flag & info [ "decisions" ] ~doc:"Print the full decision log.")
  in
  let run preset hosts tenants rounds crash part loss seed show_decisions =
    if hosts < 1 then invalid_arg "fleet: need at least one host";
    if rounds < 1 then invalid_arg "fleet: need at least one round";
    let t = F.Controller.create ~seed () in
    for i = 0 to hosts - 1 do
      F.Controller.spawn t ~preset (Printf.sprintf "host%d" i)
    done;
    Printf.printf "fleet: %d host(s), %d tenant(s), seed %d\n" hosts tenants seed;
    if loss > 0.0 then begin
      let f = { E.Chanfault.none with E.Chanfault.loss } in
      List.iter (fun h -> F.Controller.set_chanfault t h f) (F.Controller.hosts t)
    end;
    for i = 1 to tenants do
      F.Controller.submit t
        (R.Intent.pipe ~tenant:i ~src:"nic0" ~dst:"socket0" ~rate:(U.Units.gbps 2.0))
    done;
    let third = max 1 (rounds / 3) in
    F.Controller.run t ~rounds:third;
    (match crash with
    | None -> ()
    | Some h ->
      F.Controller.crash t h;
      Printf.printf "round %d: crashed %s\n" (F.Controller.rounds t) h);
    (match part with
    | None -> ()
    | Some h ->
      F.Controller.partition t h;
      Printf.printf "round %d: partitioned %s\n" (F.Controller.rounds t) h);
    F.Controller.run t ~rounds:third;
    (match crash with
    | None -> ()
    | Some h ->
      F.Controller.restart t h;
      Printf.printf "round %d: restarted %s\n" (F.Controller.rounds t) h);
    (match part with
    | None -> ()
    | Some h ->
      F.Controller.heal t h;
      Printf.printf "round %d: healed %s\n" (F.Controller.rounds t) h);
    if rounds - (2 * third) > 0 then F.Controller.run t ~rounds:(rounds - (2 * third));
    Format.printf "%a" F.Controller.pp t;
    (* digest is a pure read; print it before the roll-up, which advances
       each host's sampler window *)
    Printf.printf "fleet digest 0x%016Lx decisions 0x%016Lx\n" (F.Controller.digest t)
      (F.Controller.decisions_fingerprint t);
    if show_decisions then
      List.iter
        (fun d -> Printf.printf "  %s\n" (F.Controller.decision_to_string d))
        (F.Controller.decisions t);
    let fleet = F.Controller.collect t in
    Format.printf "%a" Mon.Fleet.pp fleet
  in
  Cmd.v
    (Cmd.info "fleet"
       ~doc:
         "Run a fleet controller over N simulated hosts: placement on the least-loaded \
          feasible host, cross-host failover, lossy control channels ($(b,--loss)), and \
          operator-injected $(b,--crash) / $(b,--partition) faults with automatic \
          restart/heal at two thirds of the run.")
    Term.(
      const run $ fleet_preset $ hosts_n $ tenants_n $ rounds_n $ crash_h $ partition_h
      $ loss_p $ seed_f $ decisions_flag)

let main_cmd =
  let doc = "operator tools for the (simulated) manageable intra-host network" in
  Cmd.group (Cmd.info "ihnetctl" ~doc ~version:"1.0.0")
    [ topo_cmd; ping_cmd; trace_cmd; perf_cmd; dump_cmd; check_cmd; heal_cmd; heartbeat_cmd; monitor_cmd; latency_cmd; plan_cmd; report_cmd; scenario_cmd; spec_cmd; record_cmd; replay_cmd; scan_cmd; faults_cmd; fleet_cmd; bench_cmd ]

let () = exit (guarded (fun () -> Cmd.eval ~catch:false main_cmd))
