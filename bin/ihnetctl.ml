(* ihnetctl — operator CLI for the simulated manageable intra-host
   network: topology inspection, ihping/ihtrace/ihperf/ihdump
   diagnostics, configuration checking and heartbeat runs.

   Every diagnostic subcommand is a thin front-end over the typed
   command plane (Ihnet_api): it builds one Ihnet_api.Command, executes
   it — against a fresh in-process host by default, or against a live
   ihnetd over a Unix socket with --connect — and renders the typed
   response. Trace tooling (record/replay/faults/bench) and the
   self-contained fleet campaign stay local.

   Examples:
     dune exec bin/ihnetctl.exe -- topo --preset dgx
     dune exec bin/ihnetctl.exe -- ping nic0 dimm0.0.0 -c 20
     dune exec bin/ihnetctl.exe -- trace ext gpu0 --load
     dune exec bin/ihnetctl.exe -- perf gpu0 ssd0
     dune exec bin/ihnetctl.exe -- check --ddio off --mps 128
     dune exec bin/ihnetctl.exe -- dump nic0 pciesw0 --load
     dune exec bin/ihnetctl.exe -- heartbeat --degrade rp0.0:pciesw0
     dune exec bin/ihnetctl.exe -- stats --connect /tmp/ihnet.sock *)

open Cmdliner
module E = Ihnet_engine
module T = Ihnet_topology
module U = Ihnet_util
module Mon = Ihnet_monitor
module R = Ihnet_manager
module Rec = Ihnet_record
module F = Ihnet_fleet
module Api = Ihnet_api
module C = Ihnet_api.Command

(* {1 Common options} *)

let preset_conv =
  let parse s =
    match Api.Host_spec.preset_of_name s with Ok p -> Ok p | Error e -> Error (`Msg e)
  in
  let print ppf p = Format.pp_print_string ppf (Api.Host_spec.preset_name p) in
  Arg.conv (parse, print)

let preset =
  Arg.(
    value
    & opt preset_conv Ihnet.Host.Two_socket
    & info [ "preset"; "p" ] ~docv:"PRESET" ~doc:"Host topology: two-socket, dgx, epyc, minimal.")

let ddio_flag =
  Arg.(
    value
    & opt (some (enum [ ("on", true); ("off", false) ])) None
    & info [ "ddio" ] ~docv:"on|off" ~doc:"Override the DDIO setting.")

let iommu_flag =
  Arg.(
    value
    & opt (some (enum [ ("on", true); ("off", false) ])) None
    & info [ "iommu" ] ~docv:"on|off" ~doc:"Override the IOMMU setting.")

let mps_flag =
  Arg.(
    value
    & opt (some int) None
    & info [ "mps" ] ~docv:"BYTES" ~doc:"Override the PCIe MaxPayloadSize.")

let topo_file_flag =
  Arg.(
    value
    & opt (some file) None
    & info [ "topo-file"; "f" ] ~docv:"FILE"
        ~doc:"Build the host from a topology spec file instead of a preset (see 'ihnetctl spec').")

let domains_flag =
  Arg.(
    value
    & opt (some int) None
    & info [ "domains" ] ~docv:"N"
        ~doc:
          "Run fabric reallocation on $(docv) OCaml domains (default: \\$IHNET_DOMAINS, else 1). \
           Results are bit-identical for every width; >1 only changes wall-clock time.")

let make_spec preset topo_file ddio iommu mps domains =
  let preset =
    match topo_file with
    | None -> preset
    | Some path -> (
      match Api.Host_spec.load_topo_file path with
      | Ok topo -> Ihnet.Host.Custom topo
      | Error e ->
        Printf.eprintf "%s: %s\n" path e;
        exit 2)
  in
  Api.Host_spec.make ~preset ?ddio ?iommu ?mps ?domains ()

let spec_term =
  Term.(
    const make_spec $ preset $ topo_file_flag $ ddio_flag $ iommu_flag $ mps_flag $ domains_flag)

let connect_flag =
  Arg.(
    value
    & opt (some string) None
    & info [ "connect" ] ~docv:"SOCK"
        ~doc:
          "Run the command against a live ihnetd listening on this Unix-domain socket instead \
           of a fresh in-process host.")

let src_arg = Arg.(required & pos 0 (some string) None & info [] ~docv:"SRC")
let dst_arg = Arg.(required & pos 1 (some string) None & info [] ~docv:"DST")

(* [--load] puts a standard aggressor mix on the fabric so diagnostics
   have something to see. *)
let load_flag =
  Arg.(value & flag & info [ "load" ] ~doc:"Add background load (loopback + trainer) first.")

(* user errors (unknown devices, bad specs) exit with a message, not a
   backtrace; typed wire errors exit with their documented code *)
let guarded f =
  try f () with
  | Api.Api_error.Error e ->
    Printf.eprintf "ihnetctl: %s\n" (Api.Api_error.message e);
    exit (Api.Api_error.exit_code e)
  | Invalid_argument msg | Failure msg ->
    Printf.eprintf "ihnetctl: %s\n" msg;
    exit 1

(* {1 Command execution: in-process or over the wire} *)

let exec ?on_event spec connect cmd =
  match connect with
  | None -> Api.Handlers.run (Api.Handlers.local spec) cmd
  | Some path ->
    let c = Api.Client.connect path in
    Fun.protect
      ~finally:(fun () -> Api.Client.close c)
      (fun () -> Api.Client.call ?on_event c cmd)

let show spec connect cmd =
  let r = exec spec connect cmd in
  Api.Render.print r;
  let code = Api.Render.exit_code r in
  if code <> 0 then exit code

(* {1 Subcommands} *)

let topo_cmd =
  let dot = Arg.(value & flag & info [ "dot" ] ~doc:"Emit Graphviz DOT instead of a summary.") in
  let run spec connect dot = show spec connect (C.Topo { dot }) in
  Cmd.v (Cmd.info "topo" ~doc:"Show the host topology.")
    Term.(const run $ spec_term $ connect_flag $ dot)

let ping_cmd =
  let count = Arg.(value & opt int 10 & info [ "c"; "count" ] ~docv:"N" ~doc:"Probes to send.") in
  let run spec connect load src dst count = show spec connect (C.Ping { src; dst; count; load }) in
  Cmd.v
    (Cmd.info "ping" ~doc:"Probe RTT between two devices (ihping).")
    Term.(const run $ spec_term $ connect_flag $ load_flag $ src_arg $ dst_arg $ count)

let trace_cmd =
  let run spec connect load src dst = show spec connect (C.Path_trace { src; dst; load }) in
  Cmd.v
    (Cmd.info "trace" ~doc:"Hop-by-hop latency decomposition (ihtrace).")
    Term.(const run $ spec_term $ connect_flag $ load_flag $ src_arg $ dst_arg)

let perf_cmd =
  let run spec connect load src dst = show spec connect (C.Perf { src; dst; load }) in
  Cmd.v
    (Cmd.info "perf" ~doc:"Measure achievable bandwidth (ihperf).")
    Term.(const run $ spec_term $ connect_flag $ load_flag $ src_arg $ dst_arg)

let dump_cmd =
  let run spec connect load a b = show spec connect (C.Dump { a; b; load }) in
  Cmd.v
    (Cmd.info "dump" ~doc:"Capture the flows crossing a link (ihdump).")
    Term.(const run $ spec_term $ connect_flag $ load_flag $ src_arg $ dst_arg)

let check_cmd =
  let run preset ddio iommu mps connect =
    let spec = Api.Host_spec.make ~preset ?ddio ?iommu ?mps () in
    show spec connect C.Check
  in
  Cmd.v
    (Cmd.info "check" ~doc:"Static misconfiguration checks.")
    Term.(const run $ preset $ ddio_flag $ iommu_flag $ mps_flag $ connect_flag)

let heartbeat_cmd =
  let degrade =
    Arg.(
      value
      & opt (some (pair ~sep:':' string string)) None
      & info [ "degrade" ] ~docv:"DEVA:DEVB"
          ~doc:"Silently degrade the link between two devices mid-run.")
  in
  let run spec connect degrade = show spec connect (C.Heartbeat { degrade }) in
  Cmd.v
    (Cmd.info "heartbeat" ~doc:"Run the heartbeat mesh; optionally inject a silent fault.")
    Term.(const run $ spec_term $ connect_flag $ degrade)

let heal_cmd =
  let gbps =
    Arg.(value & opt float 80.0 & info [ "gbps" ] ~docv:"GBPS" ~doc:"Victim pipe guarantee.")
  in
  let fault_link =
    Arg.(
      value
      & opt (some (pair ~sep:':' string string)) None
      & info [ "fault" ] ~docv:"DEVA:DEVB"
          ~doc:"Link to degrade (default: the second hop of the victim's placed path).")
  in
  let factor =
    Arg.(
      value
      & opt float 0.05
      & info [ "factor" ] ~docv:"F" ~doc:"Fault capacity factor (0 = link down).")
  in
  let silent =
    Arg.(
      value & flag
      & info [ "silent" ]
          ~doc:"Treat the fault as silent: ignore the fabric announcement and rely on heartbeat \
                localization to open the case.")
  in
  let flap =
    Arg.(
      value
      & opt (some int) None
      & info [ "flap" ] ~docv:"N" ~doc:"Toggle the fault N times at 1 ms period instead of \
                                        injecting it once (exercises flap damping).")
  in
  let ms =
    Arg.(value & opt float 20.0 & info [ "ms" ] ~docv:"MS" ~doc:"Milliseconds to let the loop run.")
  in
  let run spec connect src dst gbps fault factor silent flap ms =
    show spec connect (C.Heal { src; dst; gbps; fault; factor; silent; flap; ms })
  in
  Cmd.v
    (Cmd.info "heal"
       ~doc:"Inject a fault on a guaranteed pipe and watch the remediation loop recover it.")
    Term.(
      const run $ spec_term $ connect_flag $ src_arg $ dst_arg $ gbps $ fault_link $ factor
      $ silent $ flap $ ms)

let scenario_cmd =
  let name_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"NAME" ~doc:"Scenario name.")
  in
  let ms =
    Arg.(value & opt float 20.0 & info [ "ms" ] ~docv:"MS" ~doc:"Simulated milliseconds to run.")
  in
  let list_flag =
    Arg.(value & flag & info [ "list" ] ~doc:"List scenario names and exit.")
  in
  let protect =
    Arg.(
      value
      & opt (some float) None
      & info [ "protect" ] ~docv:"GBPS"
          ~doc:"Mid-run, give tenant 1 an end-to-end guarantee of this many Gbit/s and show \
                the before/after.")
  in
  let run spec connect list_only name ms protect =
    if list_only then show spec connect C.Scenario_list
    else show spec connect (C.Scenario { name; ms; protect })
  in
  Cmd.v
    (Cmd.info "scenario" ~doc:"Run a canned workload scenario and print its metrics.")
    Term.(const run $ spec_term $ connect_flag $ list_flag $ name_arg $ ms $ protect)

let monitor_cmd =
  let ms =
    Arg.(value & opt float 10.0 & info [ "ms" ] ~docv:"MS" ~doc:"Simulated milliseconds to sample.")
  in
  let period_us =
    Arg.(value & opt float 100.0 & info [ "period" ] ~docv:"US" ~doc:"Sampling period, microseconds.")
  in
  let series_filter =
    Arg.(
      value
      & opt (some string) None
      & info [ "series" ] ~docv:"PREFIX" ~doc:"Only dump series whose name starts with PREFIX.")
  in
  let run spec connect load ms period_us series =
    show spec connect (C.Monitor { ms; period_us; series; load })
  in
  Cmd.v
    (Cmd.info "monitor" ~doc:"Sample the fabric for a while and dump telemetry as CSV.")
    Term.(const run $ spec_term $ connect_flag $ load_flag $ ms $ period_us $ series_filter)

let report_cmd =
  let fidelity =
    Arg.(
      value
      & opt
          (enum
             [
               ("hardware", C.Fid_hardware); ("software", C.Fid_software); ("oracle", C.Fid_oracle);
             ])
          C.Fid_oracle
      & info [ "fidelity" ] ~docv:"LEVEL" ~doc:"Counter fidelity: hardware, software, oracle.")
  in
  let run spec connect load fidelity = show spec connect (C.Report { fidelity; load }) in
  Cmd.v
    (Cmd.info "report" ~doc:"One-shot health report (congestion, talkers, DDIO).")
    Term.(const run $ spec_term $ connect_flag $ load_flag $ fidelity)

let plan_cmd =
  let pipes =
    Arg.(
      value
      & opt_all (t3 ~sep:':' string string float) []
      & info [ "pipe" ] ~docv:"SRC:DST:GBPS" ~doc:"A pipe intent (repeatable).")
  in
  let hoses =
    Arg.(
      value
      & opt_all (t3 ~sep:':' string float float) []
      & info [ "hose" ] ~docv:"DEV:IN_GBPS:OUT_GBPS" ~doc:"A hose intent (repeatable).")
  in
  let headroom =
    Arg.(value & opt float 0.9 & info [ "headroom" ] ~docv:"F" ~doc:"Reservable fraction per link.")
  in
  let run spec connect pipes hoses headroom =
    if pipes = [] && hoses = [] then begin
      prerr_endline "no intents given; use --pipe/--hose";
      exit 1
    end;
    show spec connect (C.Plan { pipes; hoses; headroom })
  in
  Cmd.v
    (Cmd.info "plan" ~doc:"Capacity-plan a set of intents against a host.")
    Term.(const run $ spec_term $ connect_flag $ pipes $ hoses $ headroom)

let latency_cmd =
  let ms =
    Arg.(value & opt float 10.0 & info [ "ms" ] ~docv:"MS" ~doc:"Simulated milliseconds to observe.")
  in
  let link_flag =
    Arg.(
      value & flag
      & info [ "link" ] ~doc:"Also print the per-(link, direction) percentile table.")
  in
  let run spec connect load link ms = show spec connect (C.Latency { link; ms; load }) in
  Cmd.v
    (Cmd.info "latency"
       ~doc:
         "Run with the always-on latency-sketch plane enabled and print percentile summaries \
          (flow end-to-end roll-up; per-link with $(b,--link)).")
    Term.(const run $ spec_term $ connect_flag $ load_flag $ link_flag $ ms)

let scan_cmd =
  let ms =
    Arg.(
      value & opt float 10.0
      & info [ "ms" ] ~docv:"MS" ~doc:"Simulated milliseconds to run before scanning.")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE"
          ~doc:"Save the (final) snapshot as JSON, readable back by $(b,scan --diff).")
  in
  let step =
    Arg.(
      value
      & opt (some int) None
      & info [ "step" ] ~docv:"N"
          ~doc:
            "After the run, freeze the fabric and single-step up to $(docv) reallocation \
             epochs, scanning at each boundary.")
  in
  let diff_flag =
    Arg.(
      value & flag
      & info [ "diff" ]
          ~doc:
            "Compare two saved snapshots ($(i,A) $(i,B)) instead of scanning a host; prints the \
             first divergent register and exits 1 if they differ.")
  in
  let all_flag =
    Arg.(
      value & flag
      & info [ "all" ]
          ~doc:"With $(b,--diff): also compare microarchitectural registers (warm-solver and \
                memo counters), not just the architectural contract.")
  in
  let snap_a = Arg.(value & pos 0 (some file) None & info [] ~docv:"A") in
  let snap_b = Arg.(value & pos 1 (some file) None & info [] ~docv:"B") in
  let run spec connect load ms out step diff all a b =
    if diff then begin
      let path = function
        | Some p -> p
        | None -> failwith "scan --diff needs two snapshot files: scan --diff A B"
      in
      let load_snap p =
        match Rec.Scanport.load p with Ok s -> s | Error e -> failwith e
      in
      let sa = load_snap (path a) and sb = load_snap (path b) in
      let scope = if all then `All else `Arch in
      let compared =
        List.length
          (List.filter
             (fun (r : Rec.Scanport.reg) -> all || r.Rec.Scanport.rkind = `Arch)
             sa.Rec.Scanport.s_regs)
      in
      match Rec.Scanport.diff ~scope sa sb with
      | None -> Printf.printf "scan diff: identical (%d registers compared)\n" compared
      | Some m ->
        Format.printf "scan diff: %a@." Rec.Scanport.pp_mismatch m;
        exit 1
    end
    else begin
      let r = exec spec connect (C.Scan { ms; load; step; snapshot = out <> None }) in
      Api.Render.print r;
      (match (r, out) with
      | Api.Response.Scan_report { snapshot = Some j; _ }, Some p ->
        Rec.Scanport.save p (Rec.Scanport.of_json j);
        Printf.printf "wrote %s\n" p
      | _ -> ());
      let code = Api.Render.exit_code r in
      if code <> 0 then exit code
    end
  in
  Cmd.v
    (Cmd.info "scan"
       ~doc:
         "Out-of-band scan: dump the fabric's full register chain with zero impact; \
          $(b,--step) single-steps epochs under freeze, $(b,--diff) compares two saved \
          snapshots down to the first divergent register.")
    Term.(
      const run $ spec_term $ connect_flag $ load_flag $ ms $ out $ step $ diff_flag $ all_flag
      $ snap_a $ snap_b)

(* {1 Daemon-plane subcommands} *)

let tenant_flag =
  Arg.(value & opt int 1 & info [ "tenant"; "t" ] ~docv:"T" ~doc:"Tenant the operation is for.")

let submit_cmd =
  let pipes =
    Arg.(
      value
      & opt_all (t3 ~sep:':' string string float) []
      & info [ "pipe" ] ~docv:"SRC:DST:GBPS" ~doc:"A pipe target (repeatable).")
  in
  let hoses =
    Arg.(
      value
      & opt_all (t3 ~sep:':' string float float) []
      & info [ "hose" ] ~docv:"DEV:IN_GBPS:OUT_GBPS" ~doc:"A hose target (repeatable).")
  in
  let fleet =
    Arg.(
      value & flag
      & info [ "fleet" ] ~doc:"Submit to the fleet controller (ihnetd --fleet) instead of a host.")
  in
  let run spec connect tenant pipes hoses fleet =
    let targets =
      List.map
        (fun (src, dst, gbps) -> R.Intent.Pipe { src; dst; rate = U.Units.gbps gbps })
        pipes
      @ List.map
          (fun (endpoint, in_g, out_g) ->
            R.Intent.Hose
              { endpoint; to_host = U.Units.gbps in_g; from_host = U.Units.gbps out_g })
          hoses
    in
    if targets = [] then begin
      prerr_endline "no targets given; use --pipe/--hose";
      exit 1
    end;
    let intent =
      { (R.Intent.pipe ~tenant ~src:"_" ~dst:"_" ~rate:1.0) with R.Intent.targets }
    in
    show spec connect (if fleet then C.Fleet_submit intent else C.Submit intent)
  in
  Cmd.v
    (Cmd.info "submit"
       ~doc:
         "Submit a tenant intent for admission and placement; typed manager refusals come back \
          with their own exit codes.")
    Term.(const run $ spec_term $ connect_flag $ tenant_flag $ pipes $ hoses $ fleet)

let flow_cmd =
  let gbps =
    Arg.(
      value
      & opt (some float) None
      & info [ "gbps" ] ~docv:"GBPS" ~doc:"Demand cap (default: unbounded best-effort).")
  in
  let stop =
    Arg.(
      value
      & opt (some int) None
      & info [ "stop" ] ~docv:"ID" ~doc:"Stop flow $(docv) instead of starting one.")
  in
  let src = Arg.(value & pos 0 (some string) None & info [] ~docv:"SRC") in
  let dst = Arg.(value & pos 1 (some string) None & info [] ~docv:"DST") in
  let run spec connect tenant gbps stop src dst =
    match stop with
    | Some flow -> show spec connect (C.Flow_stop { flow })
    | None -> (
      match (src, dst) with
      | Some src, Some dst -> show spec connect (C.Flow_start { tenant; src; dst; gbps })
      | _ -> failwith "flow needs SRC and DST (or --stop ID)")
  in
  Cmd.v
    (Cmd.info "flow"
       ~doc:
         "Start a best-effort flow between two devices (or $(b,--stop) one) — consecutive flow \
          and fault commands arriving at a daemon in one tick share a single reallocation epoch.")
    Term.(const run $ spec_term $ connect_flag $ tenant_flag $ gbps $ stop $ src $ dst)

let fault_cmd =
  let factor =
    Arg.(
      value
      & opt float 1.0
      & info [ "factor" ] ~docv:"F" ~doc:"Capacity factor (0 = link down, 1 = unchanged).")
  in
  let extra_us =
    Arg.(
      value
      & opt float 0.0
      & info [ "latency" ] ~docv:"US" ~doc:"Extra per-crossing latency, microseconds.")
  in
  let loss =
    Arg.(value & opt float 0.0 & info [ "loss" ] ~docv:"P" ~doc:"Loss probability.")
  in
  let clear =
    Arg.(value & flag & info [ "clear" ] ~doc:"Clear the fault on the link instead.")
  in
  let clear_all =
    Arg.(value & flag & info [ "clear-all" ] ~doc:"Clear every link fault.")
  in
  let pair =
    Arg.(value & pos 0 (some (pair ~sep:':' string string)) None & info [] ~docv:"DEVA:DEVB")
  in
  let run spec connect factor extra_us loss clear clear_all pair =
    if clear_all then show spec connect C.Faults_clear_all
    else
      match pair with
      | None -> failwith "fault needs a DEVA:DEVB link (or --clear-all)"
      | Some (a, b) ->
        if clear then show spec connect (C.Fault_clear { a; b })
        else show spec connect (C.Fault_inject { a; b; factor; extra_us; loss })
  in
  Cmd.v
    (Cmd.info "fault" ~doc:"Inject (or clear) a link fault by device pair.")
    Term.(
      const run $ spec_term $ connect_flag $ factor $ extra_us $ loss $ clear $ clear_all $ pair)

let run_cmd =
  let ms =
    Arg.(value & opt float 1.0 & info [ "ms" ] ~docv:"MS" ~doc:"Simulated milliseconds to run.")
  in
  let run spec connect ms = show spec connect (C.Run_for { ms }) in
  Cmd.v
    (Cmd.info "run" ~doc:"Advance the (daemon's) simulated clock.")
    Term.(const run $ spec_term $ connect_flag $ ms)

let stats_cmd =
  let run spec connect = show spec connect C.Stats in
  Cmd.v
    (Cmd.info "stats" ~doc:"One-line daemon status: clock, epoch, flows, clients, commands.")
    Term.(const run $ spec_term $ connect_flag)

let watch_cmd =
  let stream =
    Arg.(
      value
      & opt
          (enum
             [
               ("telemetry", C.S_telemetry);
               ("decisions", C.S_decisions);
               ("evidence", C.S_evidence);
             ])
          C.S_telemetry
      & info [ "stream" ] ~docv:"NAME" ~doc:"Stream to subscribe to: telemetry, decisions, evidence.")
  in
  let events =
    Arg.(
      value
      & opt int (-1)
      & info [ "events"; "n" ] ~docv:"N"
          ~doc:"Stop after $(docv) events (default: until the daemon closes the stream).")
  in
  let run connect stream events =
    match connect with
    | None -> failwith "watch needs --connect (there is no stream on an in-process host)"
    | Some path ->
      let c = Api.Client.connect path in
      Fun.protect
        ~finally:(fun () -> Api.Client.close c)
        (fun () ->
          (match Api.Client.call c (C.Subscribe stream) with
          | Api.Response.Ack -> ()
          | r ->
            Api.Render.print r;
            exit (Api.Render.exit_code r));
          let rec loop n =
            if n <> 0 then
              match Api.Client.next_event c with
              | None -> ()
              | Some ev ->
                Api.Render.print (Api.Response.Event ev);
                loop (n - 1)
          in
          loop events)
  in
  Cmd.v
    (Cmd.info "watch"
       ~doc:"Subscribe to a daemon event stream and print frames as they arrive.")
    Term.(const run $ connect_flag $ stream $ events)

let shutdown_cmd =
  let run spec connect =
    match connect with
    | None -> failwith "shutdown needs --connect"
    | Some _ -> show spec connect C.Shutdown
  in
  Cmd.v
    (Cmd.info "shutdown" ~doc:"Ask the daemon to flush, close every client and exit.")
    Term.(const run $ spec_term $ connect_flag)

let fleetctl_cmd =
  let spawn =
    Arg.(
      value
      & opt_all string []
      & info [ "spawn" ] ~docv:"NAME" ~doc:"Spawn a host into the fleet (repeatable).")
  in
  let spawn_preset =
    Arg.(
      value
      & opt string "minimal"
      & info [ "spawn-preset" ] ~docv:"PRESET" ~doc:"Preset for spawned hosts.")
  in
  let tenants =
    Arg.(
      value
      & opt int 0
      & info [ "tenants" ] ~docv:"T"
          ~doc:"Submit $(docv) standard tenants (one 2 Gb/s nic0 to socket0 pipe each).")
  in
  let rounds =
    Arg.(value & opt int 0 & info [ "run" ] ~docv:"R" ~doc:"Control rounds to run.")
  in
  let crash =
    Arg.(value & opt (some string) None & info [ "crash" ] ~docv:"HOST" ~doc:"Crash a host.")
  in
  let restart =
    Arg.(value & opt (some string) None & info [ "restart" ] ~docv:"HOST" ~doc:"Restart a host.")
  in
  let partition =
    Arg.(
      value & opt (some string) None & info [ "partition" ] ~docv:"HOST" ~doc:"Partition a host.")
  in
  let heal =
    Arg.(value & opt (some string) None & info [ "heal" ] ~docv:"HOST" ~doc:"Heal a partition.")
  in
  let status =
    Arg.(value & flag & info [ "status" ] ~doc:"Print the fleet roll-up afterwards.")
  in
  let decisions =
    Arg.(value & flag & info [ "decisions" ] ~doc:"With --status: include the decision log.")
  in
  let run connect spawn preset tenants rounds crash restart partition heal status decisions =
    match connect with
    | None -> failwith "fleetctl needs --connect (start ihnetd --fleet)"
    | Some _ ->
      let step cmd = show Api.Host_spec.default connect cmd in
      List.iter (fun name -> step (C.Fleet_spawn { name; preset })) spawn;
      for i = 1 to tenants do
        step
          (C.Fleet_submit
             (R.Intent.pipe ~tenant:i ~src:"nic0" ~dst:"socket0" ~rate:(U.Units.gbps 2.0)))
      done;
      Option.iter (fun host -> step (C.Fleet_fault { host; what = C.F_crash })) crash;
      Option.iter (fun host -> step (C.Fleet_fault { host; what = C.F_partition })) partition;
      if rounds > 0 then step (C.Fleet_run { rounds });
      Option.iter (fun host -> step (C.Fleet_fault { host; what = C.F_restart })) restart;
      Option.iter (fun host -> step (C.Fleet_fault { host; what = C.F_heal })) heal;
      if status then step (C.Fleet_status { decisions })
  in
  Cmd.v
    (Cmd.info "fleetctl"
       ~doc:
         "Drive a fleet-mode daemon: spawn hosts, submit tenants, inject crash/partition \
          faults, run control rounds and print the roll-up.")
    Term.(
      const run $ connect_flag $ spawn $ spawn_preset $ tenants $ rounds $ crash $ restart
      $ partition $ heal $ status $ decisions)

(* {1 Local-only subcommands: trace tooling and the fleet campaign} *)

let spec_cmd =
  let run () = print_string T.Spec.example in
  Cmd.v
    (Cmd.info "spec" ~doc:"Print an example topology spec file (for --topo-file).")
    Term.(const run $ const ())

let record_cmd =
  let source =
    Arg.(
      value
      & opt string "e17"
      & info [ "source"; "s" ] ~docv:"SCENARIO"
          ~doc:"Golden scenario to drive and record: e1, e5 or e17.")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE"
          ~doc:"Trace file to write (default: $(i,SCENARIO).trace.jsonl).")
  in
  let regen =
    Arg.(
      value
      & opt (some string) None
      & info [ "regen-golden" ] ~docv:"DIR"
          ~doc:
            "Re-record every golden scenario and rewrite the fingerprint files in $(docv) \
             (test/golden in this repo), instead of recording one trace.")
  in
  let run source out regen =
    match regen with
    | Some dir ->
      List.iter
        (fun (path, (fp : Rec.Golden.fingerprint)) ->
          Printf.printf "%s: %d lines, trace 0x%016Lx\n" path fp.Rec.Golden.g_lines
            fp.Rec.Golden.g_trace)
        (Rec.Golden.regenerate ~dir)
    | None -> (
      match Rec.Golden.find source with
      | None -> failwith (Printf.sprintf "unknown scenario %S (e1|e5|e17)" source)
      | Some sc ->
        let path = match out with Some p -> p | None -> source ^ ".trace.jsonl" in
        Out_channel.with_open_text path (fun oc ->
            let t = Rec.Golden.record ~tee:(Rec.Recorder.channel_sink oc) sc in
            Printf.printf "%s: wrote %d lines (trace fingerprint 0x%016Lx)\n" path
              (1 + List.length t.Rec.Trace.lines)
              (Rec.Trace.fingerprint t)))
  in
  Cmd.v
    (Cmd.info "record" ~doc:"Drive a deterministic scenario with the flight recorder attached.")
    Term.(const run $ source $ out $ regen)

let faults_cmd =
  let file = Arg.(required & pos 0 (some string) None & info [] ~docv:"TRACE") in
  let timeline =
    Arg.(
      value & flag
      & info [ "timeline"; "t" ]
          ~doc:"Also print every fault injection and clear chronologically, not just the final \
                active sets.")
  in
  (* codec types -> engine types, so the listing reuses the engine's
     canonical descriptions instead of duplicating the formatting *)
  let starget_of = function
    | Rec.Trace.Sf_device d -> E.Sensorfault.Device d
    | Rec.Trace.Sf_series s -> E.Sensorfault.Series s
  in
  let sf_of (sf : Rec.Trace.sensor_fault) =
    {
      E.Sensorfault.stuck = sf.Rec.Trace.sf_stuck;
      drift = sf.Rec.Trace.sf_drift;
      drop_prob = sf.Rec.Trace.sf_drop;
      dup_prob = sf.Rec.Trace.sf_dup;
      skew = sf.Rec.Trace.sf_skew;
      probe_loss = sf.Rec.Trace.sf_probe_loss;
      probe_slow = sf.Rec.Trace.sf_probe_slow;
    }
  in
  let fault_label (f : Rec.Trace.fault) =
    let parts =
      (if f.Rec.Trace.capacity_factor < 1.0 then
         [ Printf.sprintf "capacity x%.2f" f.Rec.Trace.capacity_factor ]
       else [])
      @ (if f.Rec.Trace.extra_latency > 0.0 then
           [ Printf.sprintf "+%.0f ns latency" f.Rec.Trace.extra_latency ]
         else [])
      @
      if f.Rec.Trace.loss_prob > 0.0 then
        [ Printf.sprintf "loss %.0f%%" (100.0 *. f.Rec.Trace.loss_prob) ]
      else []
    in
    if parts = [] then "no-op" else String.concat ", " parts
  in
  let run file timeline =
    match Rec.Trace.load file with
    | Error e -> failwith e
    | Ok t ->
      let links : (int, float * Rec.Trace.fault) Hashtbl.t = Hashtbl.create 16 in
      let sensors : (Rec.Trace.starget, float * Rec.Trace.sensor_fault) Hashtbl.t =
        Hashtbl.create 16
      in
      let ev at fmt = Printf.ksprintf (fun s -> if timeline then Printf.printf "%10.0f  %s\n" at s) fmt in
      List.iter
        (function
          | Rec.Trace.Op { at; op } -> (
            match op with
            | Rec.Trace.Inject_fault { link; fault } ->
              Hashtbl.replace links link (at, fault);
              ev at "link %-4d fault: %s" link (fault_label fault)
            | Rec.Trace.Clear_fault link ->
              Hashtbl.remove links link;
              ev at "link %-4d cleared" link
            | Rec.Trace.Clear_all_faults ->
              Hashtbl.reset links;
              ev at "all link faults cleared"
            | Rec.Trace.Inject_sensor_fault { starget; sf } ->
              Hashtbl.replace sensors starget (at, sf);
              ev at "%-12s sensor fault: %s"
                (E.Sensorfault.target_label (starget_of starget))
                (E.Sensorfault.describe (sf_of sf))
            | Rec.Trace.Clear_sensor_fault starget ->
              Hashtbl.remove sensors starget;
              ev at "%-12s sensor cleared" (E.Sensorfault.target_label (starget_of starget))
            | _ -> ())
          | _ -> ())
        t.Rec.Trace.lines;
      if timeline then print_newline ();
      let active_links =
        List.sort compare (Hashtbl.fold (fun l v acc -> (l, v) :: acc) links [])
      in
      let active_sensors =
        List.sort compare (Hashtbl.fold (fun tg v acc -> (tg, v) :: acc) sensors [])
      in
      Printf.printf "trace %s (%s, seed %d): %d link fault(s), %d sensor fault(s) active at end\n"
        file t.Rec.Trace.header.Rec.Trace.label t.Rec.Trace.header.Rec.Trace.seed
        (List.length active_links) (List.length active_sensors);
      List.iter
        (fun (l, (at, f)) ->
          Printf.printf "  link %-4d since %10.0f ns: %s\n" l at (fault_label f))
        active_links;
      List.iter
        (fun (tg, (at, sf)) ->
          Printf.printf "  %-12s since %10.0f ns: %s\n"
            (E.Sensorfault.target_label (starget_of tg))
            at
            (E.Sensorfault.describe (sf_of sf)))
        active_sensors
  in
  Cmd.v
    (Cmd.info "faults"
       ~doc:
         "List the link and sensor faults a recorded trace injects — the active sets at end of \
          trace, with $(b,--timeline) the full chronology.")
    Term.(const run $ file $ timeline)

let replay_cmd =
  let file = Arg.(required & pos 0 (some string) None & info [] ~docv:"TRACE") in
  let perturb_at =
    Arg.(
      value
      & opt (some float) None
      & info [ "perturb-at" ] ~docv:"NS"
          ~doc:
            "Deliberately double the weight of one running flow at $(docv) (trace-relative \
             nanoseconds) during replay — the conformance check must then report a divergence.")
  in
  let run file perturb_at domains =
    let perturb =
      Option.map
        (fun at ->
          ( at,
            fun fab flows ->
              match (flows : E.Flow.t list) with
              | f :: _ -> E.Fabric.set_flow_limits fab f ~weight:(f.E.Flow.weight *. 2.0) ()
              | [] -> () ))
        perturb_at
    in
    match Rec.Trace.load file with
    | Error e -> failwith e
    | Ok t ->
      (* a perturbed replay is a divergence drill: pre-compute the clean
         run's scan chain so the report can name the first bad register,
         not just the first bad epoch *)
      let reference =
        match perturb with
        | None -> None
        | Some _ -> (
          match Rec.Replay.scan_reference ?domains t with Ok r -> Some r | Error _ -> None)
      in
      (match Rec.Replay.run ?perturb ?domains ?reference t with
      | Error e -> failwith e
      | Ok report ->
        Format.printf "%a@." Rec.Replay.pp_report report;
        if not (Rec.Replay.ok report) then exit 1)
  in
  Cmd.v
    (Cmd.info "replay"
       ~doc:"Re-execute a recorded trace on a fresh host and check digests epoch-by-epoch.")
    Term.(const run $ file $ perturb_at $ domains_flag)

let bench_cmd =
  let current =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"CURRENT"
          ~doc:"Freshly measured snapshot (output of $(b,fabric_bench -o) ...).")
  in
  let baseline =
    Arg.(
      required
      & opt (some string) None
      & info [ "compare" ] ~docv:"BASELINE"
          ~doc:"Committed snapshot to compare against (normally the repo's BENCH_fabric.json).")
  in
  let tolerance =
    Arg.(
      value
      & opt float 30.0
      & info [ "tolerance" ] ~docv:"PCT"
          ~doc:
            "Maximum tolerated regression, percent below baseline. Exceeding it on any compared \
             subject exits 1.")
  in
  let only =
    Arg.(
      value
      & opt_all string []
      & info [ "subject" ] ~docv:"NAME"
          ~doc:"Compare only $(docv) (repeatable); default: every subject present in both files.")
  in
  let load_subjects path =
    let json = Rec.Trace.json_of_string (In_channel.with_open_text path In_channel.input_all) in
    match Rec.Trace.field json "subjects" with
    | Rec.Trace.Obj kvs -> List.map (fun (k, v) -> (k, Rec.Trace.as_float v)) kvs
    | _ -> failwith (path ^ ": no \"subjects\" object")
  in
  let run current baseline tolerance only =
    let base = load_subjects baseline and cur = load_subjects current in
    let names =
      match only with
      | [] -> List.filter (fun (n, _) -> List.mem_assoc n cur) base |> List.map fst
      | names ->
        List.iter
          (fun n ->
            if not (List.mem_assoc n base) then
              failwith (Printf.sprintf "%s: no subject %S in baseline" baseline n);
            if not (List.mem_assoc n cur) then
              failwith (Printf.sprintf "%s: no subject %S in current snapshot" current n))
          names;
        names
    in
    if names = [] then failwith "no common subjects to compare";
    Printf.printf "%-28s %12s %12s %9s\n" "subject" "baseline" "current" "delta";
    let worst_over = ref [] in
    List.iter
      (fun n ->
        let b = List.assoc n base and c = List.assoc n cur in
        let delta = if b > 0.0 then 100.0 *. ((c /. b) -. 1.0) else 0.0 in
        let flag = if delta < -.tolerance then " REGRESSION" else "" in
        if delta < -.tolerance then worst_over := (n, delta) :: !worst_over;
        Printf.printf "%-28s %12.1f %12.1f %+8.1f%%%s\n" n b c delta flag)
      names;
    List.iter
      (fun (n, _) ->
        if not (List.mem_assoc n base) then Printf.printf "%-28s %25s\n" n "(new, no baseline)")
      cur;
    match !worst_over with
    | [] -> ()
    | over ->
      Printf.eprintf "bench: %d subject(s) regressed more than %.0f%% below %s\n"
        (List.length over) tolerance baseline;
      exit 1
  in
  Cmd.v
    (Cmd.info "bench"
       ~doc:
         "Compare a fresh fabric_bench snapshot against the committed one, per-subject; exit 1 \
          on a regression beyond the tolerance (the CI bench-regression smoke step).")
    Term.(const run $ current $ baseline $ tolerance $ only)

let fleet_cmd =
  let hosts_n =
    Arg.(value & opt int 4 & info [ "hosts"; "n" ] ~docv:"N" ~doc:"Fleet size (hosts spawned as host0..hostN-1).")
  in
  let tenants_n =
    Arg.(
      value
      & opt int 6
      & info [ "tenants"; "t" ] ~docv:"T"
          ~doc:"Tenants to place (one 2 Gb/s nic0 to socket0 pipe each).")
  in
  let rounds_n =
    Arg.(value & opt int 30 & info [ "rounds"; "r" ] ~docv:"R" ~doc:"Control rounds to run.")
  in
  let crash_h =
    Arg.(
      value
      & opt (some string) None
      & info [ "crash" ] ~docv:"HOST"
          ~doc:"Crash $(docv) a third of the way in and restart it at two thirds.")
  in
  let partition_h =
    Arg.(
      value
      & opt (some string) None
      & info [ "partition" ] ~docv:"HOST"
          ~doc:"Partition $(docv) a third of the way in and heal it at two thirds.")
  in
  let loss_p =
    Arg.(
      value
      & opt float 0.0
      & info [ "loss" ] ~docv:"P" ~doc:"Drop probability on every control channel.")
  in
  let seed_f = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"S" ~doc:"Controller seed.") in
  let fleet_preset =
    Arg.(
      value
      & opt preset_conv Ihnet.Host.Minimal
      & info [ "preset"; "p" ] ~docv:"PRESET"
          ~doc:"Per-host topology (default minimal; two-socket, dgx, epyc, minimal).")
  in
  let decisions_flag =
    Arg.(value & flag & info [ "decisions" ] ~doc:"Print the full decision log.")
  in
  let run preset hosts tenants rounds crash part loss seed show_decisions =
    if hosts < 1 then invalid_arg "fleet: need at least one host";
    if rounds < 1 then invalid_arg "fleet: need at least one round";
    let t = F.Controller.create ~seed () in
    for i = 0 to hosts - 1 do
      F.Controller.spawn t ~preset (Printf.sprintf "host%d" i)
    done;
    Printf.printf "fleet: %d host(s), %d tenant(s), seed %d\n" hosts tenants seed;
    if loss > 0.0 then begin
      let f = { E.Chanfault.none with E.Chanfault.loss } in
      List.iter (fun h -> F.Controller.set_chanfault t h f) (F.Controller.hosts t)
    end;
    for i = 1 to tenants do
      F.Controller.submit t
        (R.Intent.pipe ~tenant:i ~src:"nic0" ~dst:"socket0" ~rate:(U.Units.gbps 2.0))
    done;
    let third = max 1 (rounds / 3) in
    F.Controller.run t ~rounds:third;
    (match crash with
    | None -> ()
    | Some h ->
      F.Controller.crash t h;
      Printf.printf "round %d: crashed %s\n" (F.Controller.rounds t) h);
    (match part with
    | None -> ()
    | Some h ->
      F.Controller.partition t h;
      Printf.printf "round %d: partitioned %s\n" (F.Controller.rounds t) h);
    F.Controller.run t ~rounds:third;
    (match crash with
    | None -> ()
    | Some h ->
      F.Controller.restart t h;
      Printf.printf "round %d: restarted %s\n" (F.Controller.rounds t) h);
    (match part with
    | None -> ()
    | Some h ->
      F.Controller.heal t h;
      Printf.printf "round %d: healed %s\n" (F.Controller.rounds t) h);
    if rounds - (2 * third) > 0 then F.Controller.run t ~rounds:(rounds - (2 * third));
    Format.printf "%a" F.Controller.pp t;
    (* digest is a pure read; print it before the roll-up, which advances
       each host's sampler window *)
    Printf.printf "fleet digest 0x%016Lx decisions 0x%016Lx\n" (F.Controller.digest t)
      (F.Controller.decisions_fingerprint t);
    if show_decisions then
      List.iter
        (fun d -> Printf.printf "  %s\n" (F.Controller.decision_to_string d))
        (F.Controller.decisions t);
    let fleet = F.Controller.collect t in
    Format.printf "%a" Mon.Fleet.pp fleet
  in
  Cmd.v
    (Cmd.info "fleet"
       ~doc:
         "Run a fleet controller over N simulated hosts: placement on the least-loaded \
          feasible host, cross-host failover, lossy control channels ($(b,--loss)), and \
          operator-injected $(b,--crash) / $(b,--partition) faults with automatic \
          restart/heal at two thirds of the run.")
    Term.(
      const run $ fleet_preset $ hosts_n $ tenants_n $ rounds_n $ crash_h $ partition_h
      $ loss_p $ seed_f $ decisions_flag)

let main_cmd =
  let doc = "operator tools for the (simulated) manageable intra-host network" in
  Cmd.group (Cmd.info "ihnetctl" ~doc ~version:"1.0.0")
    [ topo_cmd; ping_cmd; trace_cmd; perf_cmd; dump_cmd; check_cmd; heal_cmd; heartbeat_cmd; monitor_cmd; latency_cmd; plan_cmd; report_cmd; scenario_cmd; spec_cmd; record_cmd; replay_cmd; scan_cmd; faults_cmd; fleet_cmd; bench_cmd; submit_cmd; flow_cmd; fault_cmd; run_cmd; stats_cmd; watch_cmd; shutdown_cmd; fleetctl_cmd ]

let () = exit (guarded (fun () -> Cmd.eval ~catch:false main_cmd))
