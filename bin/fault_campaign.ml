(* Randomized fault-campaign soak for the remediation loop.

     dune exec bin/fault_campaign.exe                    # 200 ms campaign
     dune exec bin/fault_campaign.exe -- --smoke         # 20 ms, CI-sized
     dune exec bin/fault_campaign.exe -- --seed 7 --duration-ms 500
     dune exec bin/fault_campaign.exe -- --sensor-faults # lying telemetry too

   A two-socket host under flow churn while a seeded adversary injects,
   clears and flaps faults on random PCIe links and restarts the
   arbiter shim. Every millisecond the guarantee-accounting invariant
   is checked: the arbiter's floor table must hold exactly the attached
   running flows — no stale entries from completed/stopped/migrated
   flows, no attached flow without its floor. The whole campaign then
   runs a second time from the same seed and must produce an identical
   fingerprint (determinism). Exit status 0 = all checks passed.

   With --sensor-faults a second adversary corrupts the telemetry plane
   itself (stuck counters, drift, sample loss, clock skew, heartbeat
   probe corruption — at least three lying sensors held active), the
   full monitor stack runs (sampler + heartbeat mesh), and remediation
   is gated behind the evidence corroborator. The extra invariant: no
   impactful Replace/Degrade action may ever land on a link that never
   carried a real fault — lying sensors alone must not move traffic. *)

module E = Ihnet_engine
module T = Ihnet_topology
module U = Ihnet_util
module R = Ihnet_manager
module Rec = Ihnet_record
module F = Ihnet_fleet

let check_floors mgr ~at =
  let arb = R.Manager.arbiter mgr in
  let floors = List.map fst (R.Arbiter.installed_floors arb) in
  let attached =
    List.concat_map
      (fun (p : R.Placement.t) ->
        List.filter_map
          (fun (f : E.Flow.t) -> if f.E.Flow.state = E.Flow.Running then Some f.E.Flow.id else None)
          p.R.Placement.attached)
      (R.Manager.placements mgr)
    |> List.sort_uniq compare
  in
  let stale = List.filter (fun id -> not (List.mem id attached)) floors in
  let missing = List.filter (fun id -> not (List.mem id floors)) attached in
  if stale <> [] || missing <> [] then
    failwith
      (Printf.sprintf "floor accounting drift at %.0f ns: %d stale floor(s), %d missing floor(s)"
         at (List.length stale) (List.length missing));
  List.iter
    (fun (p : R.Placement.t) ->
      if p.R.Placement.floor_scale <= 0.0 || p.R.Placement.floor_scale > 1.0 then
        failwith
          (Printf.sprintf "floor_scale out of range at %.0f ns: %f" at p.R.Placement.floor_scale))
    (R.Manager.placements mgr)

type stats = {
  faults : int;
  clears : int;
  flaps : int;
  shim_restarts : int;
  flows : int;
  checks : int;
  decisions : int;
  reallocations : int;
  actions : int;
  resolved : int;
  exhausted : int;
  sensor_injects : int;
  sensor_clears : int;
  sensor_active : int;
  false_migrations : int;
  floors : (int * float) list;
}

let run_campaign ?trace_buf ?(digest_every = 64) ?(sensor_mode = false) ?(preset = Ihnet.Host.Two_socket) ~seed ~duration () =
  (* the one shared host-construction path (Ihnet_api.Host_spec), same
     as ihnetctl/ihnetd *)
  let host = Ihnet_api.Host_spec.create_host (Ihnet_api.Host_spec.make ~preset ~seed ()) in
  let fab = Ihnet.Host.fabric host in
  let sim = Ihnet.Host.sim host in
  (* flight recorder first, while the host is still flowless: any
     failure below then comes with a replayable repro trace *)
  let recorder =
    Option.map
      (fun buf ->
        Rec.Recorder.attach ~digest_every ~label:"fault-campaign" ~seed
          ~sink:(Rec.Recorder.buffer_sink buf) fab)
      trace_buf
  in
  let mgr = Ihnet.Host.enable_manager host () in
  let rem =
    if sensor_mode then begin
      (* full monitor stack: the sampler so series faults bite, the
         heartbeat mesh so probe corruption bites, and the evidence
         gate so neither can trigger a migration on its own *)
      ignore (Ihnet.Host.start_monitoring host ());
      Ihnet.Host.enable_remediation host
        ~wiring:{ Ihnet.Host.default_wiring with Ihnet.Host.evidence = true }
        ()
    end
    else
      Ihnet.Host.enable_remediation host
        ~wiring:{ Ihnet.Host.default_wiring with Ihnet.Host.heartbeat = false }
        ()
  in
  Option.iter (fun r -> Rec.Recorder.observe_remediation r rem) recorder;
  let rng = U.Rng.create (seed * 7919) in
  let submit intent =
    match R.Manager.submit mgr intent with
    | Ok ps -> ps
    | Error e ->
      failwith ("fault_campaign: admission refused: " ^ Ihnet.Manager.error_to_string e)
  in
  ignore (submit (R.Intent.pipe ~tenant:1 ~src:"ext" ~dst:"socket0" ~rate:(U.Units.gbytes_per_s 8.0)));
  ignore (submit (R.Intent.pipe ~tenant:2 ~src:"gpu0" ~dst:"socket0" ~rate:(U.Units.gbytes_per_s 4.0)));
  ignore (submit (R.Intent.pipe ~tenant:3 ~src:"ext" ~dst:"socket1" ~rate:(U.Units.gbytes_per_s 6.0)));
  ignore (submit (R.Intent.hose ~tenant:4 ~endpoint:"ssd1" ~to_host:(U.Units.gbytes_per_s 2.0)
                    ~from_host:(U.Units.gbytes_per_s 2.0)));
  let pcie_links =
    List.filter
      (fun (l : T.Link.t) -> match l.T.Link.kind with T.Link.Pcie _ -> true | _ -> false)
      (T.Topology.links (Ihnet.Host.topology host))
    |> Array.of_list
  in
  let faults = ref 0 and clears = ref 0 and flaps = ref 0 in
  let restarts = ref 0 and flows = ref 0 and checks = ref 0 in
  let sensor_injects = ref 0 and sensor_clears = ref 0 in
  (* every link that ever carried a real fault (injected or flapped);
     the sensor-mode invariant compares migrations against this set *)
  let ever_faulted : (T.Link.id, unit) Hashtbl.t = Hashtbl.create 16 in
  (* flow churn: bounded flows on the live placements, completing on
     their own so floor pruning on self-completion is exercised *)
  E.Sim.every sim ~period:(U.Units.us 73.0) ~until:duration (fun _ ->
      let ps = Array.of_list (R.Manager.placements mgr) in
      if Array.length ps > 0 then begin
        let p = U.Rng.pick rng ps in
        let bytes = U.Rng.uniform rng 0.2e6 4e6 in
        let f =
          E.Fabric.start_flow fab ~tenant:p.R.Placement.tenant
            ~demand:(U.Rng.uniform rng 2e9 12e9) ~path:p.R.Placement.path
            ~size:(E.Flow.Bytes bytes) ()
        in
        incr flows;
        ignore (R.Manager.attach mgr f)
      end);
  (* fault adversary *)
  E.Sim.every sim ~period:(U.Units.us 531.0) ~until:duration (fun _ ->
      let link = (U.Rng.pick rng pcie_links).T.Link.id in
      match U.Rng.int rng 5 with
      | 0 | 1 ->
        incr faults;
        Hashtbl.replace ever_faulted link ();
        let factor = [| 0.05; 0.2; 0.5 |].(U.Rng.int rng 3) in
        E.Fabric.inject_fault fab link (E.Fault.degrade ~capacity_factor:factor ())
      | 2 ->
        incr clears;
        E.Fabric.clear_fault fab link
      | 3 ->
        incr flaps;
        Hashtbl.replace ever_faulted link ();
        E.Fabric.flap_link fab link
          (E.Fault.degrade ~capacity_factor:0.1 ())
          ~period:(U.Units.us 400.0) ~toggles:(2 * (1 + U.Rng.int rng 4))
      | _ ->
        incr clears;
        E.Fabric.clear_all_faults fab);
  (* sensor adversary: corrupts the telemetry plane, never the fabric.
     Seeds three liars up front and keeps at least three active so the
     evidence gate is always under attack. *)
  if sensor_mode then begin
    let devices =
      Array.of_list (List.map (fun d -> d.T.Device.id) (T.Topology.devices (Ihnet.Host.topology host)))
    in
    let series =
      Array.of_list
        (List.concat_map
           (fun (l : T.Link.t) ->
             [ Printf.sprintf "link.%d.fwd.bytes" l.T.Link.id;
               Printf.sprintf "link.%d.fwd.util" l.T.Link.id;
               Printf.sprintf "link.%d.rev.bytes" l.T.Link.id ])
           (Array.to_list pcie_links))
    in
    let inject tgt sf =
      incr sensor_injects;
      E.Fabric.inject_sensor_fault fab tgt sf
    in
    inject (E.Sensorfault.Device (U.Rng.pick rng devices)) (E.Sensorfault.probe_corruption ~loss:0.85 ());
    inject (E.Sensorfault.Device (U.Rng.pick rng devices)) (E.Sensorfault.drifting ~factor:3.0);
    inject (E.Sensorfault.Series (U.Rng.pick rng series)) E.Sensorfault.stuck_at;
    E.Sim.every sim ~period:(U.Units.us 811.0) ~until:duration (fun _ ->
        match U.Rng.int rng 6 with
        | 0 ->
          inject (E.Sensorfault.Device (U.Rng.pick rng devices))
            (E.Sensorfault.probe_corruption ~loss:(U.Rng.uniform rng 0.5 0.95)
               ~slow:(U.Rng.uniform rng 0.0 0.5) ())
        | 1 ->
          inject (E.Sensorfault.Device (U.Rng.pick rng devices))
            (E.Sensorfault.drifting ~factor:(U.Rng.uniform rng 1.5 4.0))
        | 2 -> inject (E.Sensorfault.Series (U.Rng.pick rng series)) E.Sensorfault.stuck_at
        | 3 ->
          inject (E.Sensorfault.Series (U.Rng.pick rng series))
            (E.Sensorfault.lossy ~drop_prob:(U.Rng.uniform rng 0.1 0.5) ~dup_prob:0.1 ())
        | 4 ->
          inject (E.Sensorfault.Series (U.Rng.pick rng series))
            (E.Sensorfault.skewed ~skew:(U.Rng.uniform rng 0.0 (U.Units.us 40.0)))
        | _ ->
          (* clear one liar, but never drop below three active *)
          let active = E.Fabric.sensor_faults fab in
          if List.length active > 3 then begin
            let tgts = Array.of_list (List.map fst active) in
            incr sensor_clears;
            E.Fabric.clear_sensor_fault fab (U.Rng.pick rng tgts)
          end)
  end;
  (* shim restarts under load: the generation stamp must keep exactly
     one tick chain alive *)
  E.Sim.every sim ~period:(U.Units.ms 5.0) ~until:duration (fun _ ->
      incr restarts;
      R.Manager.stop_shim mgr;
      R.Manager.start_shim mgr ~period:(U.Units.us 50.0));
  (* invariant epoch *)
  E.Sim.every sim ~period:(U.Units.ms 1.0) ~until:duration (fun _ ->
      incr checks;
      check_floors mgr ~at:(Ihnet.Host.now host));
  Ihnet.Host.run_for host duration;
  let sensor_active = List.length (E.Fabric.sensor_faults fab) in
  if sensor_mode && sensor_active < 3 then
    failwith (Printf.sprintf "sensor adversary fell below three liars (%d active)" sensor_active);
  E.Fabric.clear_all_faults fab;
  E.Fabric.clear_all_sensor_faults fab;
  Ihnet.Host.run_for host (U.Units.ms 30.0);
  check_floors mgr ~at:(Ihnet.Host.now host);
  incr checks;
  (* sensor-mode invariant: lying telemetry must never move traffic off
     a healthy link — impactful Replace/Degrade only on ever-faulted *)
  let false_migrations =
    List.length
      (List.filter
         (fun (a : R.Remediation.action) ->
           a.R.Remediation.impact
           && (a.R.Remediation.action_stage = R.Remediation.Replace
              || a.R.Remediation.action_stage = R.Remediation.Degrade)
           && not (Hashtbl.mem ever_faulted a.R.Remediation.action_link))
         (R.Remediation.actions rem))
  in
  if sensor_mode && false_migrations > 0 then
    failwith
      (Printf.sprintf "%d migration/degradation action(s) landed on never-faulted links"
         false_migrations);
  let cases = R.Remediation.cases rem in
  let count st = List.length (List.filter (fun (c : R.Remediation.case) -> c.R.Remediation.status = st) cases) in
  R.Remediation.stop rem;
  R.Manager.stop_shim mgr;
  Option.iter Rec.Recorder.stop recorder;
  {
    faults = !faults;
    clears = !clears;
    flaps = !flaps;
    shim_restarts = !restarts;
    flows = !flows;
    checks = !checks;
    decisions = R.Manager.decisions mgr;
    reallocations = E.Fabric.reallocations fab;
    actions = R.Remediation.actions_count rem;
    resolved = count R.Remediation.Resolved;
    exhausted = count R.Remediation.Exhausted;
    sensor_injects = !sensor_injects;
    sensor_clears = !sensor_clears;
    sensor_active;
    false_migrations;
    floors = R.Arbiter.installed_floors (R.Manager.arbiter mgr);
  }

(* {1 Fleet campaign (--fleet)}

   A seeded adversary over a whole fleet: random crash/restart,
   partition/heal, lossy control channels, tenant submit/revoke — one
   op per controller round. At the end every fault is lifted and the
   controller quiesces; then three invariants are checked:

   - feasibility: every still-registered tenant is Placed (the fleet
     has ample capacity once healthy, so a lingering Fleet_degraded or
     stuck Placing/Migrating is a liveness bug);
   - no false failover: every host-down migration and every host-lost
     verdict names a host that really carried a channel or crash fault
     at some point — a never-faulted host must not lose its tenants;
   - exactly-once: each placed tenant is backed by exactly one live
     placement fleet-wide (no double-applies after healed partitions,
     no strays after reconciliation).

   The whole campaign then runs a second time from the same seed and
   must reproduce the decision fingerprint and every per-host scan
   digest bit-for-bit. *)

type fleet_stats = {
  fl_rounds : int;
  fl_crashes : int;
  fl_restarts : int;
  fl_partitions : int;
  fl_heals : int;
  fl_loss_injects : int;
  fl_loss_clears : int;
  fl_submits : int;
  fl_revokes : int;
  fl_placed : int;
  fl_decisions : int;
  fl_fp : int64;
  fl_digest : int64;
  fl_host_digests : (string * int64) list;
  fl_tenant_views : (int * F.Controller.tenant_view) list;
}

let run_fleet_campaign ~seed ~hosts ~tenants ~rounds () =
  let cfg =
    { F.Controller.default_config with F.Controller.round_len = U.Units.us 100.0 }
  in
  let t = F.Controller.create ~config:cfg ~seed () in
  for i = 0 to hosts - 1 do
    F.Controller.spawn t ~preset:Ihnet.Host.Minimal (Printf.sprintf "host%d" i)
  done;
  let labels = Array.of_list (F.Controller.hosts t) in
  let adv = U.Rng.create (seed * 104729) in
  (* every host that ever carried a real fault (crash, partition, lossy
     channel); the false-failover invariant compares migrations against
     this set *)
  let ever_faulted : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  let partitioned : (string, unit) Hashtbl.t = Hashtbl.create 8 in
  let lossy : (string, unit) Hashtbl.t = Hashtbl.create 8 in
  let crashes = ref 0 and restarts = ref 0 in
  let partitions = ref 0 and heals = ref 0 in
  let loss_injects = ref 0 and loss_clears = ref 0 in
  let submits = ref 0 and revokes = ref 0 in
  let next_tenant = ref 0 in
  let submit () =
    incr next_tenant;
    incr submits;
    F.Controller.submit t
      (R.Intent.pipe ~tenant:!next_tenant ~src:"nic0" ~dst:"socket0" ~rate:(U.Units.gbps 2.0))
  in
  for _ = 1 to tenants do
    submit ()
  done;
  let pick_host () = labels.(U.Rng.int adv (Array.length labels)) in
  for _ = 1 to rounds do
    (match U.Rng.int adv 10 with
    | 0 ->
      let h = pick_host () in
      if F.Controller.host_view t h <> Some F.Controller.Crashed then begin
        incr crashes;
        Hashtbl.replace ever_faulted h ();
        F.Controller.crash t h
      end
    | 1 ->
      let h = pick_host () in
      if F.Controller.host_view t h = Some F.Controller.Crashed then begin
        incr restarts;
        F.Controller.restart t h
      end
    | 2 ->
      let h = pick_host () in
      if F.Controller.host_view t h <> Some F.Controller.Crashed && not (Hashtbl.mem partitioned h)
      then begin
        incr partitions;
        Hashtbl.replace ever_faulted h ();
        Hashtbl.replace partitioned h ();
        F.Controller.partition t h
      end
    | 3 ->
      let h = pick_host () in
      if Hashtbl.mem partitioned h then begin
        incr heals;
        Hashtbl.remove partitioned h;
        F.Controller.heal t h
      end
    | 4 ->
      let h = pick_host () in
      incr loss_injects;
      Hashtbl.replace ever_faulted h ();
      Hashtbl.replace lossy h ();
      F.Controller.set_chanfault t h
        (E.Chanfault.lossy ~loss:(U.Rng.uniform adv 0.1 0.4) ~dup_prob:0.1 ())
    | 5 ->
      let h = pick_host () in
      if Hashtbl.mem lossy h then begin
        incr loss_clears;
        Hashtbl.remove lossy h;
        F.Controller.set_chanfault t h E.Chanfault.none
      end
    | 6 -> submit ()
    | 7 ->
      if !next_tenant > 0 then begin
        let id = 1 + U.Rng.int adv !next_tenant in
        if List.mem id (F.Controller.tenants t) then begin
          incr revokes;
          F.Controller.revoke t ~tenant:id
        end
      end
    | _ -> ());
    F.Controller.round t
  done;
  (* lift every fault (host index order — determinism), then quiesce:
     holddowns expire, degraded tenants restore, strays reconcile *)
  Array.iter
    (fun h ->
      if F.Controller.host_view t h = Some F.Controller.Crashed then F.Controller.restart t h;
      if Hashtbl.mem partitioned h then F.Controller.heal t h;
      F.Controller.set_chanfault t h E.Chanfault.none)
    labels;
  F.Controller.run t ~rounds:80;
  (* invariant: feasibility — every surviving tenant is Placed *)
  let views =
    List.map (fun id -> (id, Option.get (F.Controller.tenant_view t id))) (F.Controller.tenants t)
  in
  List.iter
    (fun (id, v) ->
      match v with
      | F.Controller.Placed _ -> ()
      | F.Controller.Unplaced -> failwith (Printf.sprintf "tenant %d left unplaced after quiesce" id)
      | F.Controller.Placing h ->
        failwith (Printf.sprintf "tenant %d stuck placing on %s after quiesce" id h)
      | F.Controller.Migrating { from_; to_ } ->
        failwith (Printf.sprintf "tenant %d stuck migrating %s -> %s after quiesce" id from_ to_)
      | F.Controller.Fleet_degraded ->
        failwith
          (Printf.sprintf "tenant %d still fleet-degraded after quiesce (placement is feasible)" id))
    views;
  (* invariant: no false failover — host-down migrations and host-lost
     verdicts only ever name hosts that really carried a fault *)
  List.iter
    (fun (d : F.Controller.decision) ->
      match d with
      | F.Controller.D_migrated { tenant; from_; reason = F.Controller.Host_down; _ }
        when not (Hashtbl.mem ever_faulted from_) ->
        failwith
          (Printf.sprintf "tenant %d migrated off never-faulted host %s (host-down)" tenant from_)
      | F.Controller.D_host_lost { host } when not (Hashtbl.mem ever_faulted host) ->
        failwith (Printf.sprintf "never-faulted host %s declared lost" host)
      | _ -> ())
    (F.Controller.decisions t);
  (* invariant: exactly-once — each placed tenant is backed by exactly
     one live placement fleet-wide *)
  let backing : (int, int) Hashtbl.t = Hashtbl.create 32 in
  Array.iter
    (fun l ->
      match F.Controller.host t l with
      | None -> ()
      | Some host -> (
        match Ihnet.Host.manager host with
        | None -> ()
        | Some mgr ->
          List.iter
            (fun (p : R.Placement.t) ->
              let tn = p.R.Placement.tenant in
              Hashtbl.replace backing tn (1 + Option.value ~default:0 (Hashtbl.find_opt backing tn)))
            (R.Manager.placements mgr)))
    labels;
  List.iter
    (fun (id, v) ->
      match v with
      | F.Controller.Placed h ->
        let n = Option.value ~default:0 (Hashtbl.find_opt backing id) in
        if n <> 1 then
          failwith
            (Printf.sprintf "tenant %d placed on %s is backed by %d live placement(s)" id h n)
      | _ -> ())
    views;
  let digest = F.Controller.digest t in
  {
    fl_rounds = F.Controller.rounds t;
    fl_crashes = !crashes;
    fl_restarts = !restarts;
    fl_partitions = !partitions;
    fl_heals = !heals;
    fl_loss_injects = !loss_injects;
    fl_loss_clears = !loss_clears;
    fl_submits = !submits;
    fl_revokes = !revokes;
    fl_placed = List.length views;
    fl_decisions = List.length (F.Controller.decisions t);
    fl_fp = F.Controller.decisions_fingerprint t;
    fl_digest = digest;
    fl_host_digests = F.Controller.host_digests t;
    fl_tenant_views = views;
  }

let fleet_main ~seed ~hosts ~tenants ~rounds () =
  let guarded label =
    try run_fleet_campaign ~seed ~hosts ~tenants ~rounds () with
    | Failure msg ->
      Printf.eprintf "FLEET CAMPAIGN FAILURE (%s): %s\n" label msg;
      exit 1
    | e ->
      Printf.eprintf "FLEET CAMPAIGN FAILURE (%s): %s\n" label (Printexc.to_string e);
      exit 1
  in
  let s1 = guarded "first run" in
  let s2 = guarded "second run" in
  Printf.printf
    "fleet campaign: %d host(s), %d round(s), seed %d\n\
    \  adversary: %d crash(es), %d restart(s), %d partition(s), %d heal(s), %d lossy channel(s) \
     (%d cleared), %d submit(s), %d revoke(s)\n\
    \  controller: %d decision(s), %d tenant(s) placed after quiesce\n\
    \  invariants: all tenants placed, no false failover, exactly one backing placement each\n"
    hosts s1.fl_rounds seed s1.fl_crashes s1.fl_restarts s1.fl_partitions s1.fl_heals
    s1.fl_loss_injects s1.fl_loss_clears s1.fl_submits s1.fl_revokes s1.fl_decisions s1.fl_placed;
  if s1 <> s2 then begin
    Printf.eprintf
      "DETERMINISM FAILURE: identical seeds diverged (run1: %d decisions, fp 0x%016Lx, digest \
       0x%016Lx; run2: %d decisions, fp 0x%016Lx, digest 0x%016Lx)\n"
      s1.fl_decisions s1.fl_fp s1.fl_digest s2.fl_decisions s2.fl_fp s2.fl_digest;
    exit 1
  end;
  Printf.printf "  determinism: second run from seed %d produced an identical fingerprint\n" seed

let dump_trace path buf =
  Out_channel.with_open_text path (fun oc -> Out_channel.output_string oc (Buffer.contents buf))

let () =
  let seed = ref 42 and duration_ms = ref 200.0 and record_file = ref None in
  let digest_every = ref 64 and sensor_mode = ref false in
  let fleet_mode = ref false and smoke = ref false in
  let fleet_hosts = ref None and fleet_tenants = ref None and fleet_rounds = ref None in
  let rec parse = function
    | [] -> ()
    | "--smoke" :: rest ->
      smoke := true;
      duration_ms := 20.0;
      parse rest
    | "--fleet" :: rest ->
      fleet_mode := true;
      parse rest
    | "--sensor-faults" :: rest ->
      sensor_mode := true;
      parse rest
    | "--seed" :: v :: rest ->
      seed := int_of_string v;
      parse rest
    | "--duration-ms" :: v :: rest ->
      duration_ms := float_of_string v;
      parse rest
    | "--hosts" :: v :: rest ->
      fleet_hosts := Some (int_of_string v);
      parse rest
    | "--tenants" :: v :: rest ->
      fleet_tenants := Some (int_of_string v);
      parse rest
    | "--rounds" :: v :: rest ->
      fleet_rounds := Some (int_of_string v);
      parse rest
    | "--record" :: v :: rest ->
      record_file := Some v;
      parse rest
    | "--digest-every" :: v :: rest ->
      digest_every := int_of_string v;
      parse rest
    | a :: _ -> failwith ("fault_campaign: unknown argument " ^ a)
  in
  parse (List.tl (Array.to_list Sys.argv));
  if !fleet_mode then begin
    let dfl d s = if !smoke then s else d in
    fleet_main ~seed:!seed
      ~hosts:(Option.value ~default:(dfl 8 4) !fleet_hosts)
      ~tenants:(Option.value ~default:(dfl 14 6) !fleet_tenants)
      ~rounds:(Option.value ~default:(dfl 240 60) !fleet_rounds)
      ();
    exit 0
  end;
  let duration = U.Units.ms !duration_ms in
  let buf1 = Buffer.create 65536 and buf2 = Buffer.create 65536 in
  let guarded buf label =
    try
      run_campaign ~trace_buf:buf ~digest_every:!digest_every ~sensor_mode:!sensor_mode ~seed:!seed
        ~duration ()
    with e ->
      let repro = "fault_campaign_repro.jsonl" in
      dump_trace repro buf;
      Printf.eprintf "CAMPAIGN FAILURE (%s): %s\n  repro trace written to %s\n" label
        (Printexc.to_string e) repro;
      exit 1
  in
  let s1 = guarded buf1 "first run" in
  let s2 = guarded buf2 "second run" in
  Printf.printf
    "fault campaign: %.0f ms, seed %d%s\n\
    \  adversary: %d fault(s), %d clear(s), %d flap(s), %d shim restart(s), %d churn flow(s)\n\
    \  remediation: %d action(s), %d case(s) resolved, %d exhausted\n\
    \  arbiter: %d decision(s), %d reallocation(s)\n\
    \  invariant: floor accounting consistent at all %d epoch check(s)\n"
    !duration_ms !seed
    (if !sensor_mode then " (sensor faults on)" else "")
    s1.faults s1.clears s1.flaps s1.shim_restarts s1.flows s1.actions s1.resolved s1.exhausted
    s1.decisions s1.reallocations s1.checks;
  if !sensor_mode then
    Printf.printf
      "  sensor adversary: %d liar(s) injected, %d cleared, %d still active at teardown\n\
      \  evidence gate: %d migration/degradation action(s) on never-faulted links\n"
      s1.sensor_injects s1.sensor_clears s1.sensor_active s1.false_migrations;
  if s1 <> s2 then begin
    dump_trace "fault_campaign_repro.jsonl" buf1;
    dump_trace "fault_campaign_repro2.jsonl" buf2;
    Printf.eprintf
      "DETERMINISM FAILURE: identical seeds diverged (run1: %d decisions, %d actions; run2: %d \
       decisions, %d actions)\n\
      \  repro traces written to fault_campaign_repro.jsonl / fault_campaign_repro2.jsonl\n"
      s1.decisions s1.actions s2.decisions s2.actions;
    exit 1
  end;
  Printf.printf "  determinism: second run from seed %d produced an identical fingerprint\n" !seed;
  match !record_file with
  | Some path ->
    dump_trace path buf1;
    Printf.printf "  flight recorder: trace written to %s\n" path
  | None -> ()
