(* ihnetd — the long-running daemon half of the control plane: one
   live simulated host (or fleet controller), served to N concurrent
   ihnetctl clients over a Unix-domain socket, with the flight
   recorder capturing the whole session so it replays bit-for-bit.

   Examples:
     dune exec bin/ihnetd.exe -- --socket /tmp/ihnet.sock
     dune exec bin/ihnetd.exe -- --preset dgx --trace session.trace.jsonl
     dune exec bin/ihnetd.exe -- --fleet --socket /tmp/fleet.sock
   then, from another terminal:
     dune exec bin/ihnetctl.exe -- topo --connect /tmp/ihnet.sock
     dune exec bin/ihnetctl.exe -- shutdown --connect /tmp/ihnet.sock *)

open Cmdliner
module Rec = Ihnet_record
module F = Ihnet_fleet
module Api = Ihnet_api

let preset_conv =
  let parse s =
    match Api.Host_spec.preset_of_name s with Ok p -> Ok p | Error e -> Error (`Msg e)
  in
  let print ppf p = Format.pp_print_string ppf (Api.Host_spec.preset_name p) in
  Arg.conv (parse, print)

let preset =
  Arg.(
    value
    & opt preset_conv Ihnet.Host.Two_socket
    & info [ "preset"; "p" ] ~docv:"PRESET" ~doc:"Host topology: two-socket, dgx, epyc, minimal.")

let ddio_flag =
  Arg.(
    value
    & opt (some (enum [ ("on", true); ("off", false) ])) None
    & info [ "ddio" ] ~docv:"on|off" ~doc:"Override the DDIO setting.")

let iommu_flag =
  Arg.(
    value
    & opt (some (enum [ ("on", true); ("off", false) ])) None
    & info [ "iommu" ] ~docv:"on|off" ~doc:"Override the IOMMU setting.")

let mps_flag =
  Arg.(
    value
    & opt (some int) None
    & info [ "mps" ] ~docv:"BYTES" ~doc:"Override the PCIe MaxPayloadSize.")

let topo_file_flag =
  Arg.(
    value
    & opt (some file) None
    & info [ "topo-file"; "f" ] ~docv:"FILE"
        ~doc:
          "Build the host from a topology spec file instead of a preset (not replayable — the \
           trace header cannot name a preset).")

let domains_flag =
  Arg.(
    value
    & opt (some int) None
    & info [ "domains" ] ~docv:"N"
        ~doc:"Run fabric reallocation on $(docv) OCaml domains (default: \\$IHNET_DOMAINS, else 1).")

let seed_flag =
  Arg.(value & opt (some int) None & info [ "seed" ] ~docv:"S" ~doc:"Host RNG seed (default 42).")

let socket_flag =
  Arg.(
    value
    & opt string "ihnetd.sock"
    & info [ "socket"; "s" ] ~docv:"PATH" ~doc:"Unix-domain socket to listen on.")

let trace_flag =
  Arg.(
    value
    & opt string "ihnetd.trace.jsonl"
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Flight-recorder trace of the whole session, replayable with $(b,ihnetctl replay) \
           (host mode only).")

let no_trace_flag =
  Arg.(value & flag & info [ "no-trace" ] ~doc:"Serve without the flight recorder attached.")

let fleet_flag =
  Arg.(
    value & flag
    & info [ "fleet" ]
        ~doc:
          "Serve a fleet controller instead of a single host: clients drive it with the \
           fleet-spawn/fleet-run/fleet-status commands.")

let push_every_flag =
  Arg.(
    value
    & opt int 64
    & info [ "push-every" ] ~docv:"N"
        ~doc:"Telemetry stream decimation: push one sample every $(docv) reallocation epochs.")

let run preset topo_file ddio iommu mps domains seed socket trace no_trace fleet push_every =
  let spec = Api.Host_spec.make ~preset ?topo_file ?ddio ?iommu ?mps ?domains ?seed () in
  let serve target recorder =
    let handlers = Api.Handlers.create ?recorder ~spec target in
    let srv = Api.Server.create ~push_every handlers socket in
    Printf.eprintf "ihnetd: %s mode, preset %s, listening on %s\n%!"
      (match target with Api.Handlers.Host _ -> "host" | Api.Handlers.Fleet _ -> "fleet")
      spec.Api.Host_spec.preset_name socket;
    Api.Server.serve srv
  in
  if fleet then serve (Api.Handlers.Fleet (F.Controller.create ?seed ())) None
  else begin
    let host = Api.Host_spec.create_host spec in
    if no_trace then serve (Api.Handlers.Host host) None
    else
      Out_channel.with_open_text trace (fun oc ->
          (* the recorder defaults [preset] to the topology's own name,
             which is what Replay.run rebuilds from *)
          let recorder =
            Rec.Recorder.attach ~label:"ihnetd" ?seed:spec.Api.Host_spec.seed
              ~sink:(Rec.Recorder.channel_sink oc)
              (Ihnet.Host.fabric host)
          in
          serve (Api.Handlers.Host host) (Some recorder);
          Rec.Recorder.stop recorder;
          Printf.eprintf "ihnetd: wrote %d trace line(s) to %s\n%!" (Rec.Recorder.lines recorder)
            trace)
  end

let main_cmd =
  let doc = "serve one simulated host (or fleet) to concurrent ihnetctl clients" in
  Cmd.v
    (Cmd.info "ihnetd" ~doc ~version:"1.0.0")
    Term.(
      const run $ preset $ topo_file_flag $ ddio_flag $ iommu_flag $ mps_flag $ domains_flag
      $ seed_flag $ socket_flag $ trace_flag $ no_trace_flag $ fleet_flag $ push_every_flag)

(* user errors (bad specs, busy sockets) exit with a message, not a
   backtrace *)
let guarded f =
  try f () with
  | Api.Api_error.Error e ->
    Printf.eprintf "ihnetd: %s\n" (Api.Api_error.message e);
    exit (Api.Api_error.exit_code e)
  | Invalid_argument msg | Failure msg ->
    Printf.eprintf "ihnetd: %s\n" msg;
    exit 1
  | Unix.Unix_error (e, fn, arg) ->
    Printf.eprintf "ihnetd: %s%s: %s\n" fn
      (if arg = "" then "" else " " ^ arg)
      (Unix.error_message e);
    exit 1

let () = exit (guarded (fun () -> Cmd.eval ~catch:false main_cmd))
