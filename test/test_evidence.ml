(* Sensor-fault tolerance tests: the Sensorfault model, the trace codec
   for its injection ops, record → replay conformance with lying
   sensors, the monitor's validity metadata (telemetry staleness,
   counter/sampler plausibility verdicts, coverage-discounted heartbeat
   confidence), the evidence corroboration gate, the remediation
   migration rate limiter, and the qcheck interleaving property that no
   mix of lying sensors and real faults ever migrates traffic off a
   healthy link. *)

module E = Ihnet_engine
module T = Ihnet_topology
module U = Ihnet_util
module Mon = Ihnet_monitor
module R = Ihnet_manager
module Rec = Ihnet_record

let tc name f = Alcotest.test_case name `Quick f

let fresh ?(seed = 11) () =
  let topo = T.Builder.two_socket_server () in
  let sim = E.Sim.create () in
  let fab = E.Fabric.create ~seed sim topo in
  (topo, sim, fab)

let dev topo n =
  match T.Topology.device_by_name topo n with
  | Some d -> d.T.Device.id
  | None -> Alcotest.fail ("no device " ^ n)

let route topo a b =
  match T.Routing.shortest_path topo (dev topo a) (dev topo b) with
  | Some p -> p
  | None -> Alcotest.fail (Printf.sprintf "%s unreachable from %s" b a)

let run_for sim ns = E.Sim.run ~until:(E.Sim.now sim +. ns) sim

(* {1 Sensorfault model} *)

let sf_check = Alcotest.(check bool)

let sensorfault_tests =
  [
    tc "none is healthy and constructors are not" (fun () ->
        sf_check "none" true (E.Sensorfault.is_none E.Sensorfault.none);
        List.iter
          (fun sf -> sf_check "faulty" false (E.Sensorfault.is_none sf))
          [
            E.Sensorfault.stuck_at;
            E.Sensorfault.drifting ~factor:2.0;
            E.Sensorfault.lossy ~drop_prob:0.1 ();
            E.Sensorfault.skewed ~skew:(U.Units.us 5.0);
            E.Sensorfault.probe_corruption ~loss:0.5 ();
          ]);
    tc "merge: stuck ORs, drift multiplies, probabilities noisy-OR, skews add" (fun () ->
        let a =
          {
            (E.Sensorfault.drifting ~factor:2.0) with
            E.Sensorfault.drop_prob = 0.5;
            skew = 10.0;
          }
        in
        let b =
          { E.Sensorfault.stuck_at with E.Sensorfault.drift = 3.0; drop_prob = 0.5; skew = 5.0 }
        in
        let m = E.Sensorfault.merge a b in
        sf_check "stuck" true m.E.Sensorfault.stuck;
        Alcotest.(check (float 1e-9)) "drift" 6.0 m.E.Sensorfault.drift;
        Alcotest.(check (float 1e-9)) "drop" 0.75 m.E.Sensorfault.drop_prob;
        Alcotest.(check (float 1e-9)) "skew" 15.0 m.E.Sensorfault.skew;
        sf_check "merge with none is identity" true
          (E.Sensorfault.merge a E.Sensorfault.none = a));
    tc "inject validates parameters" (fun () ->
        let t = E.Sensorfault.create () in
        Alcotest.check_raises "drop_prob > 1"
          (Invalid_argument "Sensorfault.inject: drop_prob not in [0,1]") (fun () ->
            E.Sensorfault.inject t (E.Sensorfault.Series "s")
              { E.Sensorfault.none with E.Sensorfault.drop_prob = 1.5 }));
    tc "active is deterministically ordered and clear removes" (fun () ->
        let t = E.Sensorfault.create () in
        E.Sensorfault.inject t (E.Sensorfault.Series "b") E.Sensorfault.stuck_at;
        E.Sensorfault.inject t (E.Sensorfault.Device 7) (E.Sensorfault.drifting ~factor:2.0);
        E.Sensorfault.inject t (E.Sensorfault.Device 2) E.Sensorfault.stuck_at;
        E.Sensorfault.inject t (E.Sensorfault.Series "a") E.Sensorfault.stuck_at;
        Alcotest.(check int) "count" 4 (E.Sensorfault.count t);
        let order = List.map fst (E.Sensorfault.active t) in
        sf_check "devices by id then series by name" true
          (order
          = [
              E.Sensorfault.Device 2;
              E.Sensorfault.Device 7;
              E.Sensorfault.Series "a";
              E.Sensorfault.Series "b";
            ]);
        E.Sensorfault.clear t (E.Sensorfault.Device 7);
        sf_check "cleared target reads healthy" true
          (E.Sensorfault.is_none (E.Sensorfault.get t (E.Sensorfault.Device 7)));
        E.Sensorfault.clear_all t;
        Alcotest.(check int) "clear_all" 0 (E.Sensorfault.count t));
    tc "describe is compact and labeled" (fun () ->
        Alcotest.(check string) "healthy" "healthy" (E.Sensorfault.describe E.Sensorfault.none);
        Alcotest.(check string)
          "device label" "device 3"
          (E.Sensorfault.target_label (E.Sensorfault.Device 3));
        let d = E.Sensorfault.describe (E.Sensorfault.drifting ~factor:1.5) in
        sf_check "mentions drift" true
          (String.length d >= 5 && String.sub d 0 5 = "drift"));
  ]

(* {1 Trace codec for sensor ops} *)

let roundtrip line =
  match Rec.Trace.line_of_string (Rec.Trace.line_to_string line) with
  | Ok l -> l
  | Error e -> Alcotest.fail ("codec: " ^ e)

let codec_tests =
  [
    tc "sensor-fault ops round-trip exactly" (fun () ->
        let sf =
          {
            Rec.Trace.sf_stuck = true;
            sf_drift = 2.5;
            sf_drop = 0.125;
            sf_dup = 0.0625;
            sf_skew = 12345.678;
            sf_probe_loss = 0.9;
            sf_probe_slow = 0.25;
          }
        in
        List.iter
          (fun op ->
            let line = Rec.Trace.Op { at = 42.5; op } in
            sf_check "round-trip" true (roundtrip line = line))
          [
            Rec.Trace.Inject_sensor_fault { starget = Rec.Trace.Sf_device 9; sf };
            Rec.Trace.Inject_sensor_fault
              { starget = Rec.Trace.Sf_series "link.4.fwd.bytes"; sf };
            Rec.Trace.Clear_sensor_fault (Rec.Trace.Sf_device 9);
            Rec.Trace.Clear_sensor_fault (Rec.Trace.Sf_series "link.4.fwd.bytes");
          ]);
  ]

(* {1 Record → replay conformance with lying sensors} *)

let replay_tests =
  [
    tc "sensor faults are recorded and replayed onto the fresh fabric" (fun () ->
        let topo, sim, fab = fresh () in
        let buf = Buffer.create 8192 in
        let rcd =
          Rec.Recorder.attach ~digest_every:4 ~label:"sensor-replay" ~seed:11
            ~sink:(Rec.Recorder.buffer_sink buf) fab
        in
        ignore
          (E.Fabric.start_flow fab ~tenant:1 ~demand:(U.Units.gbytes_per_s 6.0)
             ~path:(route topo "ext" "socket0") ~size:E.Flow.Unbounded ());
        run_for sim (U.Units.us 200.0);
        E.Fabric.inject_sensor_fault fab
          (E.Sensorfault.Device (dev topo "nic0"))
          (E.Sensorfault.probe_corruption ~loss:0.8 ~slow:0.1 ());
        E.Fabric.inject_sensor_fault fab
          (E.Sensorfault.Series "link.3.fwd.bytes")
          (E.Sensorfault.drifting ~factor:3.0);
        run_for sim (U.Units.us 300.0);
        let sick =
          (List.hd (route topo "ext" "socket0").T.Path.hops).T.Path.link.T.Link.id
        in
        E.Fabric.inject_fault fab sick (E.Fault.degrade ~capacity_factor:0.1 ());
        run_for sim (U.Units.us 300.0);
        E.Fabric.clear_sensor_fault fab (E.Sensorfault.Series "link.3.fwd.bytes");
        run_for sim (U.Units.us 200.0);
        Rec.Recorder.stop rcd;
        let trace =
          match Rec.Trace.parse (Buffer.contents buf) with
          | Ok t -> t
          | Error e -> Alcotest.fail ("trace parse: " ^ e)
        in
        let replayed = ref None in
        let setup _sim fab = replayed := Some fab in
        (match Rec.Replay.run ~setup trace with
        | Error e -> Alcotest.fail ("replay refused: " ^ e)
        | Ok r ->
          if not (Rec.Replay.ok r) then
            Alcotest.fail (Format.asprintf "%a" Rec.Replay.pp_report r));
        match !replayed with
        | None -> Alcotest.fail "replay never ran setup"
        | Some rfab ->
          sf_check "same active sensor faults after replay" true
            (E.Fabric.sensor_faults rfab = E.Fabric.sensor_faults fab));
  ]

(* {1 Telemetry validity metadata} *)

let telemetry_tests =
  [
    tc "last_update and staleness track the newest sample" (fun () ->
        let tl = Mon.Telemetry.create () in
        sf_check "unknown series" true (Mon.Telemetry.last_update tl ~series:"x" = None);
        Mon.Telemetry.record tl ~series:"x" ~at:100.0 1.0;
        Mon.Telemetry.record tl ~series:"x" ~at:250.0 2.0;
        sf_check "last update" true (Mon.Telemetry.last_update tl ~series:"x" = Some 250.0);
        sf_check "staleness" true
          (Mon.Telemetry.staleness tl ~series:"x" ~now:400.0 = Some 150.0);
        sf_check "staleness clamps at zero under skew" true
          (Mon.Telemetry.staleness tl ~series:"x" ~now:200.0 = Some 0.0));
  ]

(* {1 Counter / sampler plausibility verdicts} *)

let load_host () =
  let host = Ihnet.Host.create ~seed:5 Ihnet.Host.Two_socket in
  let mgr = Ihnet.Host.enable_manager host () in
  let p =
    match
      Ihnet.Host.submit_intent host
        (R.Intent.pipe ~tenant:1 ~src:"ext" ~dst:"socket0" ~rate:(U.Units.gbytes_per_s 10.0))
    with
    | Ok [ p ] -> p
    | _ -> Alcotest.fail "submit failed"
  in
  let f =
    E.Fabric.start_flow (Ihnet.Host.fabric host) ~tenant:1 ~demand:(U.Units.gbytes_per_s 10.0)
      ~path:p.R.Placement.path ~size:E.Flow.Unbounded ()
  in
  ignore (R.Manager.attach mgr f);
  (host, p)

let hop_link (p : R.Placement.t) n =
  (List.nth p.R.Placement.path.T.Path.hops n).T.Path.link.T.Link.id

(* id and traffic direction of the nth hop: sensor faults on a bytes
   series only matter in the direction the flow actually loads *)
let hop (p : R.Placement.t) n =
  let h = List.nth p.R.Placement.path.T.Path.hops n in
  (h.T.Path.link.T.Link.id, h.T.Path.dir)

let health_tests =
  [
    tc "sampler flags stuck and drifting series; honest sensors stay clean" (fun () ->
        let host, p = load_host () in
        let s = Ihnet.Host.start_monitoring host () in
        Ihnet.Host.run_for host (U.Units.ms 2.0);
        Alcotest.(check (list reject)) "no verdicts while honest" [] (Mon.Sampler.health s);
        let fab = Ihnet.Host.fabric host in
        let loaded, ldir = hop p 0 in
        E.Fabric.inject_sensor_fault fab
          (E.Sensorfault.Series (Mon.Sampler.bytes_series loaded ldir))
          E.Sensorfault.stuck_at;
        let drifted, ddir = hop p 1 in
        (* 10x a 10 GB/s flow clears every link capacity on the path *)
        E.Fabric.inject_sensor_fault fab
          (E.Sensorfault.Series (Mon.Sampler.bytes_series drifted ddir))
          (E.Sensorfault.drifting ~factor:10.0);
        Ihnet.Host.run_for host (U.Units.ms 2.0);
        let verdicts = Mon.Sampler.health s in
        sf_check "stuck series flatlines" true
          (List.exists (fun (id, d, v) -> id = loaded && d = ldir && v = `Flatline) verdicts);
        sf_check "drifting series is physically impossible" true
          (List.exists (fun (id, d, v) -> id = drifted && d = ddir && v = `Out_of_range) verdicts));
    tc "counter flags a drifting device; honest devices stay clean" (fun () ->
        let host, p = load_host () in
        let topo = Ihnet.Host.topology host in
        let s = Ihnet.Host.start_monitoring host () in
        Ihnet.Host.run_for host (U.Units.ms 2.0);
        let counter = Mon.Sampler.counter s in
        Alcotest.(check (list reject)) "no verdicts while honest" [] (Mon.Counter.health counter);
        (* drift the NIC the pipe actually enters through: a device
           fault corrupts the counters of every incident link *)
        let nic_link = hop_link p 0 in
        let l = T.Topology.link topo nic_link in
        let ext = dev topo "ext" in
        let nic = if l.T.Link.a = ext then l.T.Link.b else l.T.Link.a in
        E.Fabric.inject_sensor_fault (Ihnet.Host.fabric host)
          (E.Sensorfault.Device nic)
          (E.Sensorfault.drifting ~factor:10.0);
        Ihnet.Host.run_for host (U.Units.ms 2.0);
        let flagged = List.map fst (Mon.Counter.health counter) in
        sf_check "nic-adjacent link flagged out-of-range" true (List.mem nic_link flagged));
  ]

(* {1 Evidence gate} *)

let gate_is_corroborated = function `Corroborated _ -> true | _ -> false
let gate_is_suspected = function `Suspected _ -> true | _ -> false

let evidence_tests =
  [
    tc "config validation" (fun () ->
        let _, _, fab = fresh () in
        Alcotest.check_raises "quorum 0" (Invalid_argument "Evidence.create: quorum must be >= 1")
          (fun () ->
            ignore
              (Mon.Evidence.create
                 ~config:{ (Mon.Evidence.default_config ()) with Mon.Evidence.quorum = 0 }
                 fab)));
    tc "single modality suspects, quorum corroborates" (fun () ->
        let _, _, fab = fresh () in
        let ev = Mon.Evidence.create fab in
        sf_check "no reports" true (Mon.Evidence.verdict ev 4 = `Unknown);
        Mon.Evidence.report ev ~modality:Mon.Evidence.Heartbeat ~link:4 ~score:0.9;
        sf_check "one modality is only suspicion" true
          (gate_is_suspected (Mon.Evidence.verdict ev 4));
        Mon.Evidence.report ev ~modality:Mon.Evidence.Anomaly ~link:4 ~score:0.8;
        sf_check "two independent modalities corroborate" true
          (gate_is_corroborated (Mon.Evidence.verdict ev 4)));
    tc "a repeating detector is still one witness" (fun () ->
        let _, _, fab = fresh () in
        let ev = Mon.Evidence.create fab in
        for _ = 1 to 1000 do
          Mon.Evidence.report ev ~modality:Mon.Evidence.Heartbeat ~link:2 ~score:0.99
        done;
        Alcotest.(check int) "one live report" 1 (Mon.Evidence.report_count ev);
        sf_check "still not corroborated" true
          (gate_is_suspected (Mon.Evidence.verdict ev 2)));
    tc "weak reports don't count toward quorum" (fun () ->
        let _, _, fab = fresh () in
        let ev = Mon.Evidence.create fab in
        Mon.Evidence.report ev ~modality:Mon.Evidence.Heartbeat ~link:3 ~score:0.9;
        Mon.Evidence.report ev ~modality:Mon.Evidence.Anomaly ~link:3 ~score:0.1;
        sf_check "strong + weak stays suspicion" true
          (gate_is_suspected (Mon.Evidence.verdict ev 3)));
    tc "operator injections corroborate alone and clears withdraw them" (fun () ->
        let topo, _, fab = fresh () in
        let ev = Mon.Evidence.create fab in
        let link = (List.hd (T.Topology.links topo)).T.Link.id in
        E.Fabric.inject_fault fab link (E.Fault.degrade ~capacity_factor:0.2 ());
        sf_check "trusted modality corroborates alone" true
          (gate_is_corroborated (Mon.Evidence.verdict ev link));
        E.Fabric.clear_fault fab link;
        sf_check "clear withdraws the report" true (Mon.Evidence.verdict ev link = `Unknown));
    tc "reports expire with the sliding window" (fun () ->
        let _, sim, fab = fresh () in
        let ev =
          Mon.Evidence.create
            ~config:{ (Mon.Evidence.default_config ()) with Mon.Evidence.window = U.Units.ms 1.0 }
            fab
        in
        Mon.Evidence.report ev ~modality:Mon.Evidence.Heartbeat ~link:1 ~score:0.9;
        sf_check "live inside the window" true (Mon.Evidence.verdict ev 1 <> `Unknown);
        run_for sim (U.Units.ms 2.0);
        sf_check "expired outside the window" true (Mon.Evidence.verdict ev 1 = `Unknown));
    tc "invalidate withdraws one modality" (fun () ->
        let _, _, fab = fresh () in
        let ev = Mon.Evidence.create fab in
        Mon.Evidence.report ev ~modality:Mon.Evidence.Heartbeat ~link:6 ~score:0.9;
        Mon.Evidence.report ev ~modality:Mon.Evidence.Counter ~link:6 ~score:0.9;
        sf_check "corroborated" true (gate_is_corroborated (Mon.Evidence.verdict ev 6));
        Mon.Evidence.invalidate ev ~modality:Mon.Evidence.Counter ~link:6;
        sf_check "back to suspicion" true (gate_is_suspected (Mon.Evidence.verdict ev 6)));
    tc "anomaly alarms map to links through series names" (fun () ->
        let _, _, fab = fresh () in
        let ev = Mon.Evidence.create fab in
        Mon.Evidence.feed_anomaly ev
          [
            { Mon.Anomaly.at = 0.0; series = "link.5.fwd.util"; value = 0.1; reason = "shift" };
            { Mon.Anomaly.at = 0.0; series = "ddio.0.hit"; value = 0.1; reason = "shift" };
          ];
        sf_check "link series reported" true (Mon.Evidence.verdict ev 5 <> `Unknown);
        Alcotest.(check int) "non-link series ignored" 1 (Mon.Evidence.report_count ev));
  ]

(* {1 Heartbeat false positives: the thrash scenario the gate prevents} *)

let false_positive_tests =
  [
    tc "lossy probes on a healthy mesh never corroborate" (fun () ->
        let topo, sim, fab = fresh ~seed:7 () in
        (* a small probe mesh so a lying agent can black out every path
           over its leaf link in a single round — the only way localize
           produces a suspect at all — without needing near-total loss.
           The liar's leaf link must be crossed by liar pairs only, so
           healthy pairs can't exonerate it: no [ext] in the mesh *)
        let devices = List.map (dev topo) [ "nic0"; "gpu0"; "ssd0"; "ssd1" ] in
        let hb = Mon.Heartbeat.start fab ~devices () in
        let ev = Mon.Evidence.create fab in
        run_for sim (U.Units.ms 6.0) (* baseline warm-up *);
        (* one corrupted probe agent, zero real faults *)
        E.Fabric.inject_sensor_fault fab
          (E.Sensorfault.Device (dev topo "nic0"))
          (E.Sensorfault.probe_corruption ~loss:0.5 ());
        let max_confidence = ref 0.0 in
        let accused = ref 0 in
        for _ = 1 to 300 do
          run_for sim (U.Units.ms 1.0);
          let suspects = Mon.Heartbeat.localize hb in
          List.iter
            (fun (s : Mon.Heartbeat.suspect) ->
              incr accused;
              max_confidence := Float.max !max_confidence s.Mon.Heartbeat.confidence)
            suspects;
          Mon.Evidence.feed_heartbeat ev suspects;
          List.iter
            (fun (l : T.Link.t) ->
              sf_check "gate never promotes a single lying modality past Suspected" false
                (gate_is_corroborated (Mon.Evidence.verdict ev l.T.Link.id)))
            (T.Topology.links topo)
        done;
        sf_check "the liar did manufacture accusations" true (!accused > 0);
        (* a dead link would score 1.0 across the history window; a
           coin-flip liar only surfaces on blackout rounds and the
           healthy crossings around them hold confidence near the loss
           rate *)
        sf_check
          (Printf.sprintf
             "coverage discounting keeps false-positive confidence low (max %.2f)"
             !max_confidence)
          true
          (!max_confidence < 0.8));
  ]

(* {1 Migration rate limiter} *)

let rate_limiter_tests =
  [
    tc "an empty token bucket blocks Replace/Degrade even when corroborated" (fun () ->
        let host, p = load_host () in
        let config =
          {
            R.Remediation.default_config with
            R.Remediation.migration_budget = 0.0;
            migration_refill = U.Units.ms 1000.0;
          }
        in
        let rem =
          Ihnet.Host.enable_remediation host ~config
            ~wiring:{ Ihnet.Host.default_wiring with Ihnet.Host.heartbeat = false }
            ()
        in
        (* no evidence gate: without one every verdict counts as
           corroborated, so only the bucket stands between the case and
           a migration *)
        let bad = hop_link p 1 in
        E.Fabric.inject_fault (Ihnet.Host.fabric host) bad
          (E.Fault.degrade ~capacity_factor:0.05 ());
        Ihnet.Host.run_for host (U.Units.ms 20.0);
        sf_check "case opened" true (R.Remediation.case_for rem bad <> None);
        sf_check "supervisor acted" true (R.Remediation.actions_count rem > 0);
        let migrations =
          List.filter
            (fun (a : R.Remediation.action) ->
              a.R.Remediation.impact
              && (a.R.Remediation.action_stage = R.Remediation.Replace
                 || a.R.Remediation.action_stage = R.Remediation.Degrade))
            (R.Remediation.actions rem)
        in
        Alcotest.(check int) "no migration landed" 0 (List.length migrations);
        sf_check "the block was recorded" true
          (List.exists
             (fun (a : R.Remediation.action) ->
               not a.R.Remediation.impact
               && String.length a.R.Remediation.detail >= 9
               && String.sub a.R.Remediation.detail 0 9 = "migration")
             (R.Remediation.actions rem)));
  ]

(* {1 Interleaving property: healthy links never lose traffic} *)

let check_floors mgr =
  let arb = R.Manager.arbiter mgr in
  let floors = List.map fst (R.Arbiter.installed_floors arb) in
  let attached =
    List.concat_map
      (fun (p : R.Placement.t) ->
        List.filter_map
          (fun (f : E.Flow.t) ->
            if f.E.Flow.state = E.Flow.Running then Some f.E.Flow.id else None)
          p.R.Placement.attached)
      (R.Manager.placements mgr)
    |> List.sort_uniq compare
  in
  List.for_all (fun id -> List.mem id attached) floors
  && List.for_all (fun id -> List.mem id floors) attached
  && List.for_all
       (fun (p : R.Placement.t) ->
         p.R.Placement.floor_scale > 0.0 && p.R.Placement.floor_scale <= 1.0)
       (R.Manager.placements mgr)

type icmd =
  | Link_fault of int * int
  | Link_clear of int
  | Sensor_fault of int * int
  | Sensor_clear
  | Advance of int

let arb_icmds =
  let open QCheck in
  let gen =
    Gen.list_size (Gen.int_range 12 24)
      (Gen.oneof
         [
           Gen.map2 (fun l s -> Link_fault (l, s)) (Gen.int_bound 20) (Gen.int_bound 2);
           Gen.map (fun l -> Link_clear l) (Gen.int_bound 20);
           Gen.map2 (fun d k -> Sensor_fault (d, k)) (Gen.int_bound 40) (Gen.int_bound 3);
           Gen.return Sensor_clear;
           Gen.map (fun u -> Advance u) (Gen.int_range 1 4);
         ])
  in
  make ~print:(fun l -> Printf.sprintf "%d cmd(s)" (List.length l)) gen

let run_interleaving cmds =
  let host = Ihnet.Host.create ~seed:23 Ihnet.Host.Two_socket in
  let fab = Ihnet.Host.fabric host in
  let mgr = Ihnet.Host.enable_manager host () in
  List.iter
    (fun intent ->
      match Ihnet.Host.submit_intent host intent with
      | Ok ps ->
        List.iter
          (fun (p : R.Placement.t) ->
            let f =
              E.Fabric.start_flow fab ~tenant:p.R.Placement.tenant ~demand:p.R.Placement.rate
                ~path:p.R.Placement.path ~size:E.Flow.Unbounded ()
            in
            ignore (R.Manager.attach mgr f))
          ps
      | Error e -> QCheck.Test.fail_reportf "admission refused: %s" (R.Mgr_error.to_string e))
    [
      R.Intent.pipe ~tenant:1 ~src:"ext" ~dst:"socket0" ~rate:(U.Units.gbytes_per_s 8.0);
      R.Intent.pipe ~tenant:2 ~src:"gpu0" ~dst:"socket0" ~rate:(U.Units.gbytes_per_s 4.0);
    ];
  let rem =
    Ihnet.Host.enable_remediation host
      ~wiring:{ Ihnet.Host.default_wiring with Ihnet.Host.evidence = true }
      ()
  in
  ignore (Ihnet.Host.start_monitoring host ());
  let topo = Ihnet.Host.topology host in
  let pcie =
    List.filter
      (fun (l : T.Link.t) -> match l.T.Link.kind with T.Link.Pcie _ -> true | _ -> false)
      (T.Topology.links topo)
    |> Array.of_list
  in
  let devices = Array.of_list (List.map (fun d -> d.T.Device.id) (T.Topology.devices topo)) in
  let ever_faulted = Hashtbl.create 16 in
  let factors = [| 0.05; 0.2; 0.5 |] in
  List.iter
    (fun cmd ->
      (match cmd with
      | Link_fault (l, s) ->
        let link = pcie.(l mod Array.length pcie).T.Link.id in
        Hashtbl.replace ever_faulted link ();
        E.Fabric.inject_fault fab link (E.Fault.degrade ~capacity_factor:factors.(s) ())
      | Link_clear l -> E.Fabric.clear_fault fab pcie.(l mod Array.length pcie).T.Link.id
      | Sensor_fault (d, k) -> (
        let device = devices.(d mod Array.length devices) in
        match k with
        | 0 ->
          E.Fabric.inject_sensor_fault fab (E.Sensorfault.Device device)
            (E.Sensorfault.probe_corruption ~loss:0.85 ())
        | 1 ->
          E.Fabric.inject_sensor_fault fab (E.Sensorfault.Device device)
            (E.Sensorfault.drifting ~factor:3.0)
        | 2 ->
          let link = pcie.(d mod Array.length pcie).T.Link.id in
          E.Fabric.inject_sensor_fault fab
            (E.Sensorfault.Series (Mon.Sampler.bytes_series link T.Link.Fwd))
            E.Sensorfault.stuck_at
        | _ ->
          E.Fabric.inject_sensor_fault fab (E.Sensorfault.Device device)
            (E.Sensorfault.lossy ~drop_prob:0.3 ~dup_prob:0.1 ()))
      | Sensor_clear -> (
        match E.Fabric.sensor_faults fab with
        | [] -> ()
        | (tg, _) :: _ -> E.Fabric.clear_sensor_fault fab tg)
      | Advance chunks ->
        Ihnet.Host.run_for host (U.Units.us (float_of_int (chunks * 100)));
        R.Remediation.tick rem);
      Ihnet.Host.run_for host (U.Units.us 50.0))
    cmds;
  E.Fabric.clear_all_faults fab;
  E.Fabric.clear_all_sensor_faults fab;
  Ihnet.Host.run_for host (U.Units.ms 5.0);
  if not (check_floors mgr) then QCheck.Test.fail_report "floor accounting drifted";
  let offenders =
    List.filter
      (fun (a : R.Remediation.action) ->
        a.R.Remediation.impact
        && (a.R.Remediation.action_stage = R.Remediation.Replace
           || a.R.Remediation.action_stage = R.Remediation.Degrade)
        && not (Hashtbl.mem ever_faulted a.R.Remediation.action_link))
      (R.Remediation.actions rem)
  in
  if offenders <> [] then
    QCheck.Test.fail_reportf "%d migration(s) off never-faulted links" (List.length offenders);
  true

let property_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make
         ~name:"sensor + link fault interleavings keep floors and never migrate healthy links"
         ~count:10 arb_icmds run_interleaving);
  ]

let suites =
  [
    ("sensorfault", sensorfault_tests);
    ("sensor-trace-codec", codec_tests);
    ("sensor-replay", replay_tests);
    ("telemetry-validity", telemetry_tests);
    ("sensor-health", health_tests);
    ("evidence", evidence_tests);
    ("heartbeat-false-positives", false_positive_tests);
    ("migration-rate-limit", rate_limiter_tests);
    ("evidence-interleavings", property_tests);
  ]
