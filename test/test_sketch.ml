(* Unit, differential and merge-determinism tests for Ihnet_util.Sketch.

   Histogram is the reference oracle: both use the same log-linear
   bucket geometry, so with equal [sub] every percentile estimate must
   agree exactly. The exact-sample comparisons avoid naive "relative
   error" assertions (too weak at bucket boundaries like
   [Float.pred 8.0]) in favour of the geometry's own guarantee: a
   bucket midpoint is within half a bucket width of every value the
   bucket holds. *)

open Ihnet_util

let tc name f = Alcotest.test_case name `Quick f

let prop name ?(count = 200) gen f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count gen f)

let bits = Int64.bits_of_float

(* bit-level snapshot equality: Float equality would conflate 0. and
   -0. and choke on nan; determinism means the same BITS come out *)
let eq_snapshot (a : Sketch.snapshot) (b : Sketch.snapshot) =
  a.Sketch.s_count = b.Sketch.s_count
  && bits a.Sketch.s_mean = bits b.Sketch.s_mean
  && bits a.Sketch.s_p50 = bits b.Sketch.s_p50
  && bits a.Sketch.s_p90 = bits b.Sketch.s_p90
  && bits a.Sketch.s_p99 = bits b.Sketch.s_p99
  && bits a.Sketch.s_p999 = bits b.Sketch.s_p999
  && bits a.Sketch.s_max = bits b.Sketch.s_max

let of_list ?sub ?max_octave xs =
  let sk = Sketch.create ?sub ?max_octave () in
  List.iter (Sketch.record sk) xs;
  sk

(* nearest-rank percentile over the raw samples *)
let exact_percentile xs q =
  let a = Array.of_list xs in
  Array.sort compare a;
  let n = Array.length a in
  let rank = int_of_float (ceil (q *. float_of_int n)) in
  a.(max 0 (min (n - 1) (rank - 1)))

let unit_tests =
  [
    tc "count, min/max exact, mean close" (fun () ->
        let sk = of_list [ 100.0; 200.0; 300.0; 400.0 ] in
        Alcotest.(check int) "count" 4 (Sketch.count sk);
        Alcotest.(check (float 1e-9)) "min" 100.0 (Sketch.min_value sk);
        Alcotest.(check (float 1e-9)) "max" 400.0 (Sketch.max_value sk);
        Alcotest.(check bool) "mean near 250" true (Float.abs (Sketch.mean sk -. 250.0) < 10.0));
    tc "non-finite and negative values are ignored" (fun () ->
        let sk = of_list [ -1.0; Float.nan; infinity; neg_infinity ] in
        Alcotest.(check int) "empty" 0 (Sketch.count sk));
    tc "empty sketch reads nan" (fun () ->
        let sk = Sketch.create () in
        Alcotest.(check bool) "mean" true (Float.is_nan (Sketch.mean sk));
        Alcotest.(check bool) "p99" true (Float.is_nan (Sketch.percentile sk 0.99));
        Alcotest.(check int) "snapshot count" 0 (Sketch.snapshot sk).Sketch.s_count);
    tc "percentile clamps into the observed range" (fun () ->
        (* 513 lands in a bucket whose midpoint is 520; the estimate
           must never exceed the largest value actually seen *)
        let sk = of_list [ 513.0 ] in
        Alcotest.(check (float 1e-9)) "p100 = max" 513.0 (Sketch.percentile sk 1.0);
        Alcotest.(check (float 1e-9)) "p1 = min" 513.0 (Sketch.percentile sk 0.01));
    tc "values beyond max_octave clamp into the top bucket" (fun () ->
        let sk = of_list ~max_octave:4 [ 1e12; 2.0 ] in
        Alcotest.(check int) "count" 2 (Sketch.count sk);
        Alcotest.(check (float 1e-9)) "max exact" 1e12 (Sketch.max_value sk);
        (* the overflow sample reports from the top octave [16,32): the
           estimate degrades to the top bucket but stays in range *)
        let p99 = Sketch.percentile sk 0.99 in
        Alcotest.(check bool) "p99 in top octave" true (p99 >= 16.0 && p99 <= 1e12));
    tc "merge requires identical geometry" (fun () ->
        let a = Sketch.create ~sub:32 () and b = Sketch.create ~sub:64 () in
        Alcotest.check_raises "sub mismatch"
          (Invalid_argument "Sketch.merge: geometry mismatch") (fun () -> Sketch.merge a b));
    tc "copy is independent" (fun () ->
        let a = of_list [ 1.0; 2.0 ] in
        let b = Sketch.copy a in
        Sketch.record b 3.0;
        Alcotest.(check int) "original" 2 (Sketch.count a);
        Alcotest.(check int) "copy" 3 (Sketch.count b));
    tc "clear resets" (fun () ->
        let sk = of_list [ 5.0 ] in
        Sketch.clear sk;
        Alcotest.(check int) "count" 0 (Sketch.count sk);
        Alcotest.(check bool) "mean nan" true (Float.is_nan (Sketch.mean sk)));
  ]

let values_gen = QCheck.(list_of_size Gen.(int_range 1 200) (float_range 1.0 1e9))

let differential_tests =
  [
    prop "sketch == histogram oracle at equal geometry" values_gen (fun xs ->
        let sk = of_list ~sub:32 xs in
        let h = Histogram.create ~sub:32 () in
        List.iter (Histogram.add h) xs;
        Sketch.count sk = Histogram.count h
        && List.for_all
             (fun q ->
               bits (Sketch.percentile sk q) = bits (Histogram.percentile h q))
             [ 0.5; 0.9; 0.99; 0.999; 1.0 ]
        && bits (Sketch.max_value sk) = bits (Histogram.max_value h)
        && bits (Sketch.min_value sk) = bits (Histogram.min_value h));
    prop "percentile within half a bucket of the exact sample" values_gen (fun xs ->
        let sub = 32 in
        let sk = of_list ~sub xs in
        List.for_all
          (fun q ->
            let est = Sketch.percentile sk q and x = exact_percentile xs q in
            (* the q-th sample's bucket spans at most x/sub (log-linear,
               x >= 1), so its midpoint is within x/(2 sub) of x; the
               range clamp can only tighten the estimate *)
            Float.abs (est -. x) <= (x /. (2.0 *. float_of_int sub)) +. 1e-9)
          [ 0.5; 0.9; 0.99 ]);
    prop "sub-1.0 linear range: absolute half-bucket error"
      QCheck.(list_of_size Gen.(int_range 1 100) (float_range 0.0001 0.999))
      (fun xs ->
        let sub = 32 in
        let sk = of_list ~sub xs in
        let est = Sketch.percentile sk 0.5 and x = exact_percentile xs 0.5 in
        Float.abs (est -. x) <= (0.5 /. float_of_int sub) +. 1e-9);
  ]

let three_parts_gen =
  QCheck.(
    triple
      (list_of_size Gen.(int_range 1 60) (float_range 0.001 1e9))
      (list_of_size Gen.(int_range 1 60) (float_range 0.001 1e9))
      (list_of_size Gen.(int_range 1 60) (float_range 0.001 1e9)))

let merge_tests =
  [
    prop "merge grouping and order are bit-invisible" three_parts_gen (fun (xs, ys, zs) ->
        let whole = of_list (xs @ ys @ zs) in
        let left =
          let a = of_list xs in
          Sketch.merge a (of_list ys);
          Sketch.merge a (of_list zs);
          a
        in
        let right =
          let bc = of_list ys in
          Sketch.merge bc (of_list zs);
          let a = of_list xs in
          Sketch.merge a bc;
          a
        in
        let swapped =
          let c = of_list zs in
          Sketch.merge c (of_list ys);
          Sketch.merge c (of_list xs);
          c
        in
        let s = Sketch.snapshot whole in
        eq_snapshot s (Sketch.snapshot left)
        && eq_snapshot s (Sketch.snapshot right)
        && eq_snapshot s (Sketch.snapshot swapped));
    prop "merge == recording the concatenation" QCheck.(pair values_gen values_gen)
      (fun (xs, ys) ->
        let a = of_list xs in
        Sketch.merge a (of_list ys);
        eq_snapshot (Sketch.snapshot a) (Sketch.snapshot (of_list (xs @ ys))));
  ]

let suites =
  [
    ("sketch.units", unit_tests);
    ("sketch.differential", differential_tests);
    ("sketch.merge", merge_tests);
  ]
