(* The daemon command plane: wire-frame round-trips (commands,
   responses, errors, streamed events, inf/nan floats), incremental
   frame reassembly, the documented exit-code taxonomy, the shared
   host-spec construction path, transport-level protocol errors, and
   an integration run of one in-process server with four concurrent
   clients whose recorded session replays bit-for-bit. *)

module U = Ihnet_util
module R = Ihnet_manager
module Rec = Ihnet_record
module Api = Ihnet_api
module C = Api.Command
module Resp = Api.Response
module Err = Api.Api_error

let tc name f = Alcotest.test_case name `Quick f

let prop name ?(count = 100) arb f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count arb f)

(* ------------------------------------------------------------------ *)
(* Generators                                                          *)
(* ------------------------------------------------------------------ *)

(* the codec's float contract is IEEE-754 bit-exactness, so the
   pathological values ride along with ordinary ones *)
let gen_float =
  QCheck.Gen.(
    frequency
      [
        (6, float);
        (1, return nan);
        (1, return infinity);
        (1, return neg_infinity);
        (1, return 0.0);
        (1, return (-0.0));
        (1, return 1.5e300);
      ])

(* device-ish names plus strings that exercise JSON escaping *)
let gen_name =
  QCheck.Gen.oneofl
    [ "nic0"; "socket0"; "rp0.0"; "ext"; "a b"; "q\"uote"; "back\\slash"; "tab\there"; "" ]

let gen_int64 =
  QCheck.Gen.(
    oneof
      [ map Int64.of_int int; return Int64.min_int; return Int64.max_int; return 0L; return (-1L) ])

let gen_target =
  QCheck.Gen.(
    oneof
      [
        map3 (fun src dst rate -> R.Intent.Pipe { src; dst; rate }) gen_name gen_name gen_float;
        map3
          (fun endpoint to_host from_host -> R.Intent.Hose { endpoint; to_host; from_host })
          gen_name gen_float gen_float;
      ])

let gen_intent =
  QCheck.Gen.(
    small_nat >>= fun tenant ->
    list_size (int_range 0 3) gen_target >>= fun targets ->
    opt gen_float >>= fun latency_bound ->
    opt gen_float >>= fun p99_bound ->
    bool >>= fun work_conserving ->
    return { R.Intent.tenant; targets; latency_bound; p99_bound; work_conserving })

let gen_fidelity = QCheck.Gen.oneofl [ C.Fid_hardware; C.Fid_software; C.Fid_oracle ]
let gen_stream = QCheck.Gen.oneofl [ C.S_telemetry; C.S_decisions; C.S_evidence ]
let gen_fleet_fault = QCheck.Gen.oneofl [ C.F_crash; C.F_restart; C.F_partition; C.F_heal ]

(* every Command constructor appears at least once *)
let gen_command =
  QCheck.Gen.(
    oneof
      [
        map (fun version -> C.Hello { version }) small_nat;
        map (fun dot -> C.Topo { dot }) bool;
        ( pair gen_name gen_name >>= fun (src, dst) ->
          pair small_nat bool >>= fun (count, load) -> return (C.Ping { src; dst; count; load }) );
        map3 (fun src dst load -> C.Path_trace { src; dst; load }) gen_name gen_name bool;
        map3 (fun src dst load -> C.Perf { src; dst; load }) gen_name gen_name bool;
        map3 (fun a b load -> C.Dump { a; b; load }) gen_name gen_name bool;
        return C.Check;
        map (fun degrade -> C.Heartbeat { degrade }) (opt (pair gen_name gen_name));
        ( pair gen_name gen_name >>= fun (src, dst) ->
          pair gen_float gen_float >>= fun (gbps, factor) ->
          opt (pair gen_name gen_name) >>= fun fault ->
          pair bool (opt small_nat) >>= fun (silent, flap) ->
          gen_float >>= fun ms -> return (C.Heal { src; dst; gbps; fault; factor; silent; flap; ms })
        );
        return C.Scenario_list;
        map3 (fun name ms protect -> C.Scenario { name; ms; protect }) gen_name gen_float
          (opt gen_float);
        ( pair gen_float gen_float >>= fun (ms, period_us) ->
          pair (opt gen_name) bool >>= fun (series, load) ->
          return (C.Monitor { ms; period_us; series; load }) );
        map2 (fun fidelity load -> C.Report { fidelity; load }) gen_fidelity bool;
        map3
          (fun pipes hoses headroom -> C.Plan { pipes; hoses; headroom })
          (list_size (int_range 0 3) (map3 (fun a b r -> (a, b, r)) gen_name gen_name gen_float))
          (list_size (int_range 0 3) (map3 (fun a i o -> (a, i, o)) gen_name gen_float gen_float))
          gen_float;
        map3 (fun link ms load -> C.Latency { link; ms; load }) bool gen_float bool;
        ( pair gen_float bool >>= fun (ms, load) ->
          pair (opt small_nat) bool >>= fun (step, snapshot) ->
          return (C.Scan { ms; load; step; snapshot }) );
        map (fun ms -> C.Run_for { ms }) gen_float;
        ( pair small_nat (pair gen_name gen_name) >>= fun (tenant, (src, dst)) ->
          opt gen_float >>= fun gbps -> return (C.Flow_start { tenant; src; dst; gbps }) );
        map (fun flow -> C.Flow_stop { flow }) small_nat;
        map (fun i -> C.Submit i) gen_intent;
        ( pair gen_name gen_name >>= fun (a, b) ->
          map3
            (fun factor extra_us loss -> C.Fault_inject { a; b; factor; extra_us; loss })
            gen_float gen_float gen_float );
        map2 (fun a b -> C.Fault_clear { a; b }) gen_name gen_name;
        return C.Faults_clear_all;
        map (fun s -> C.Subscribe s) gen_stream;
        return C.Stats;
        return C.Shutdown;
        map2 (fun name preset -> C.Fleet_spawn { name; preset }) gen_name gen_name;
        map (fun i -> C.Fleet_submit i) gen_intent;
        map (fun rounds -> C.Fleet_run { rounds }) small_nat;
        map (fun decisions -> C.Fleet_status { decisions }) bool;
        map2 (fun host what -> C.Fleet_fault { host; what }) gen_name gen_fleet_fault;
      ])

let gen_mgr_error =
  QCheck.Gen.(
    oneof
      [
        map (fun s -> R.Mgr_error.Invalid_intent s) gen_name;
        map (fun s -> R.Mgr_error.Unknown_device s) gen_name;
        map2 (fun device socket -> R.Mgr_error.No_home_socket { device; socket }) gen_name gen_name;
        map2 (fun src dst -> R.Mgr_error.No_path { src; dst }) gen_name gen_name;
        map (fun s -> R.Mgr_error.No_uplink s) gen_name;
        map (fun s -> R.Mgr_error.No_downlink s) gen_name;
        map3
          (fun tenant rate best_ratio -> R.Mgr_error.Capacity_exhausted { tenant; rate; best_ratio })
          small_nat gen_float gen_float;
        return R.Mgr_error.Not_a_pipe;
        return R.Mgr_error.No_alternate_path;
        map (fun s -> R.Mgr_error.Host_unreachable s) gen_name;
        map2 (fun host command -> R.Mgr_error.Retries_exhausted { host; command }) gen_name gen_name;
        map (fun tenant -> R.Mgr_error.No_feasible_host { tenant }) small_nat;
      ])

let gen_error =
  QCheck.Gen.(
    oneof
      [
        map (fun e -> Err.Mgr e) gen_mgr_error;
        map (fun s -> Err.Invalid s) gen_name;
        map (fun s -> Err.Failed s) gen_name;
        map (fun s -> Err.Protocol s) gen_name;
        map (fun s -> Err.Unsupported s) gen_name;
      ])

let gen_event =
  QCheck.Gen.(
    oneof
      [
        ( pair gen_float small_nat >>= fun (ev_at, ev_epoch) ->
          pair small_nat gen_float >>= fun (ev_flows, ev_rate) ->
          return (Resp.Ev_telemetry { ev_at; ev_epoch; ev_flows; ev_rate }) );
        ( pair gen_float small_nat >>= fun (ev_at, ev_link) ->
          pair gen_name gen_name >>= fun (ev_stage, ev_detail) ->
          return (Resp.Ev_action { ev_at; ev_link; ev_stage; ev_detail }) );
        ( pair gen_float small_nat >>= fun (ev_at, ev_link) ->
          pair gen_name gen_float >>= fun (ev_modality, ev_score) ->
          return (Resp.Ev_evidence { ev_at; ev_link; ev_modality; ev_score }) );
      ])

let gen_link_row =
  QCheck.Gen.(
    pair small_nat gen_name >>= fun (l_id, l_kind) ->
    pair gen_name gen_name >>= fun (l_a, l_b) ->
    pair gen_float gen_float >>= fun (l_capacity, l_latency) ->
    return { Resp.l_id; l_kind; l_a; l_b; l_capacity; l_latency })

let gen_scan_step =
  QCheck.Gen.(
    pair small_nat small_nat >>= fun (st_n, st_epoch) ->
    gen_int64 >>= fun st_digest -> return { Resp.st_n; st_epoch; st_digest })

(* a representative slice of the Response surface — the fully nested
   reports plus everything that crosses the wire during an ihnetd
   session (acks, errors, events, scans, stats, fleet status) *)
let gen_response =
  QCheck.Gen.(
    oneof
      [
        return Resp.Ack;
        map (fun e -> Resp.Err e) gen_error;
        map2
          (fun mode preset -> Resp.Hello_ok { version = C.version; mode; preset })
          gen_name gen_name;
        map (fun ev -> Resp.Event ev) gen_event;
        ( pair gen_name gen_name >>= fun (summary, config) ->
          list_size (int_range 0 3) gen_link_row >>= fun links ->
          return (Resp.Topo_report { summary; config; links }) );
        map (fun s -> Resp.Topo_dot s) gen_name;
        ( pair gen_name gen_name >>= fun (src, dst) ->
          pair small_nat small_nat >>= fun (sent, lost) ->
          opt (pair (pair gen_float gen_float) (pair gen_float gen_float)) >>= fun rtt ->
          let rtt = Option.map (fun ((a, b), (c, d)) -> (a, b, c, d)) rtt in
          return (Resp.Ping_report { src; dst; sent; lost; rtt }) );
        map (fun findings -> Resp.Check_report findings) (list_size (int_range 0 3) gen_name);
        map (fun s -> Resp.Csv s) gen_name;
        map (fun s -> Resp.Health s) gen_name;
        ( pair small_nat gen_float >>= fun (intents, headroom) ->
          pair bool gen_float >>= fun (fits, scale) ->
          list_size (int_range 0 2)
            ( pair gen_name (pair gen_name gen_name) >>= fun (bn_kind, (bn_a, bn_b)) ->
              gen_float >>= fun bn_ratio -> return { Resp.bn_kind; bn_a; bn_b; bn_ratio } )
          >>= fun bottlenecks -> return (Resp.Plan_report { intents; headroom; fits; scale; bottlenecks })
        );
        ( pair small_nat small_nat >>= fun (epoch, regs) ->
          gen_int64 >>= fun digest ->
          list_size (int_range 0 3) gen_scan_step >>= fun steps ->
          opt small_nat >>= fun drained ->
          return (Resp.Scan_report { epoch; regs; digest; steps; drained; snapshot = None }) );
        map (fun flow -> Resp.Flow_ok { flow }) small_nat;
        map2
          (fun tenant placements -> Resp.Submit_ok { tenant; placements })
          small_nat
          (list_size (int_range 0 3) gen_name);
        ( pair gen_float small_nat >>= fun (now, epoch) ->
          pair small_nat gen_float >>= fun (flows, rate) ->
          pair small_nat small_nat >>= fun (reallocs, clients) ->
          small_nat >>= fun commands ->
          return (Resp.Stats_report { now; epoch; flows; rate; reallocs; clients; commands }) );
        ( pair small_nat small_nat >>= fun (hosts, rounds) ->
          pair gen_int64 gen_int64 >>= fun (digest, decisions) ->
          pair gen_name (list_size (int_range 0 3) gen_name) >>= fun (text, decision_log) ->
          return (Resp.Fleet_status_report { hosts; rounds; digest; decisions; text; decision_log })
        );
        return Resp.Bye;
      ])

(* structural equality is wrong for nan payloads; the codec's own
   contract — identical serialized bytes — is the right check *)
let json_eq j j' = String.equal (Rec.Trace.json_to_string j) (Rec.Trace.json_to_string j')

let cmd_arb = QCheck.make ~print:(fun c -> Rec.Trace.json_to_string (C.to_json c)) gen_command

let resp_arb =
  QCheck.make ~print:(fun r -> Rec.Trace.json_to_string (Resp.to_json r)) gen_response

(* ------------------------------------------------------------------ *)
(* Codec round-trips                                                   *)
(* ------------------------------------------------------------------ *)

let codec_suite =
  ( "daemon codec",
    [
      prop "command round-trips bit-for-bit" ~count:300 cmd_arb (fun c ->
          match C.of_json (C.to_json c) with
          | Error e -> QCheck.Test.fail_reportf "decode failed: %s" e
          | Ok c' -> json_eq (C.to_json c) (C.to_json c'));
      prop "response round-trips bit-for-bit" ~count:300 resp_arb (fun r ->
          match Resp.of_json (Resp.to_json r) with
          | Error e -> QCheck.Test.fail_reportf "decode failed: %s" e
          | Ok r' -> json_eq (Resp.to_json r) (Resp.to_json r'));
      prop "error taxonomy round-trips" ~count:200
        (QCheck.make ~print:(fun e -> Err.message e) gen_error)
        (fun e ->
          match Err.of_json (Err.to_json e) with
          | Error m -> QCheck.Test.fail_reportf "decode failed: %s" m
          | Ok e' -> json_eq (Err.to_json e) (Err.to_json e'));
      tc "scan snapshot payload survives the response codec" (fun () ->
          let host = Api.Host_spec.create_host Api.Host_spec.default in
          let snap = Rec.Scanport.capture (Ihnet.Host.fabric host) in
          let r =
            Resp.Scan_report
              {
                epoch = 0;
                regs = List.length snap.Rec.Scanport.s_regs;
                digest = snap.Rec.Scanport.s_digest;
                steps = [];
                drained = None;
                snapshot = Some (Rec.Scanport.to_json snap);
              }
          in
          match Resp.of_json (Resp.to_json r) with
          | Error e -> Alcotest.fail e
          | Ok (Resp.Scan_report { snapshot = Some j; _ }) ->
            let snap' = Rec.Scanport.of_json j in
            Alcotest.(check bool)
              "snapshot identical" true
              (Rec.Scanport.diff ~scope:`All snap snap' = None)
          | Ok _ -> Alcotest.fail "wrong constructor");
    ] )

(* ------------------------------------------------------------------ *)
(* Framing                                                             *)
(* ------------------------------------------------------------------ *)

let framing_suite =
  ( "daemon framing",
    [
      prop "frames reassemble from single-byte feeds" ~count:50
        (QCheck.make
           ~print:(fun cs ->
             String.concat "; " (List.map (fun c -> Rec.Trace.json_to_string (C.to_json c)) cs))
           QCheck.Gen.(list_size (int_range 1 5) gen_command))
        (fun cmds ->
          let stream = Buffer.create 256 in
          List.iter (fun c -> Buffer.add_bytes stream (Api.Wire.encode (C.to_json c))) cmds;
          let bytes = Buffer.to_bytes stream in
          let rd = Api.Wire.reader () in
          let got = ref [] in
          Bytes.iter
            (fun ch ->
              Api.Wire.feed rd (Bytes.make 1 ch) 1;
              let rec drain () =
                match Api.Wire.pop rd with
                | Some j ->
                  got := j :: !got;
                  drain ()
                | None -> ()
              in
              drain ())
            bytes;
          Api.Wire.pending rd = 0
          && List.length !got = List.length cmds
          && List.for_all2 (fun c j -> json_eq (C.to_json c) j) cmds (List.rev !got));
      tc "feed honors the length argument" (fun () ->
          let frame = Api.Wire.encode (C.to_json C.Stats) in
          let padded = Bytes.cat frame (Bytes.make 8 'x') in
          let rd = Api.Wire.reader () in
          Api.Wire.feed rd padded (Bytes.length frame);
          (match Api.Wire.pop rd with
          | Some j -> Alcotest.(check bool) "frame intact" true (json_eq (C.to_json C.Stats) j)
          | None -> Alcotest.fail "no frame");
          Alcotest.(check int) "garbage not buffered" 0 (Api.Wire.pending rd));
      tc "partial frame stays buffered" (fun () ->
          let frame = Api.Wire.encode (C.to_json C.Check) in
          let rd = Api.Wire.reader () in
          Api.Wire.feed rd frame (Bytes.length frame - 1);
          Alcotest.(check bool) "not poppable yet" true (Api.Wire.pop rd = None);
          Alcotest.(check int) "bytes buffered" (Bytes.length frame - 1) (Api.Wire.pending rd));
      tc "oversized frame is a protocol error" (fun () ->
          let header = Bytes.create 4 in
          Bytes.set_int32_be header 0 (Int32.of_int (Api.Wire.max_frame + 1));
          let rd = Api.Wire.reader () in
          Api.Wire.feed rd header 4;
          match Api.Wire.pop rd with
          | _ -> Alcotest.fail "oversized length accepted"
          | exception Err.Error (Err.Protocol _) -> ());
      tc "write_frame / read_frame round-trip over a pipe" (fun () ->
          let rd_fd, wr_fd = Unix.pipe () in
          let j = C.to_json (C.Flow_start { tenant = 3; src = "ext"; dst = "socket0"; gbps = None }) in
          Api.Wire.write_frame wr_fd j;
          (match Api.Wire.read_frame rd_fd with
          | Some j' -> Alcotest.(check bool) "payload intact" true (json_eq j j')
          | None -> Alcotest.fail "unexpected EOF");
          Unix.close wr_fd;
          Alcotest.(check bool) "clean EOF is None" true (Api.Wire.read_frame rd_fd = None);
          Unix.close rd_fd);
    ] )

(* ------------------------------------------------------------------ *)
(* Exit codes and the handler-level taxonomy                           *)
(* ------------------------------------------------------------------ *)

let exit_code_suite =
  let check_code name err want = tc name (fun () -> Alcotest.(check int) name want (Err.exit_code err)) in
  ( "daemon exit codes",
    [
      check_code "Invalid is 1" (Err.Invalid "x") 1;
      check_code "Failed is 1" (Err.Failed "x") 1;
      check_code "Protocol is 3" (Err.Protocol "x") 3;
      check_code "Unsupported is 4" (Err.Unsupported "x") 4;
      check_code "Invalid_intent is 10" (Err.Mgr (R.Mgr_error.Invalid_intent "x")) 10;
      check_code "Unknown_device is 11" (Err.Mgr (R.Mgr_error.Unknown_device "x")) 11;
      check_code "No_home_socket is 12"
        (Err.Mgr (R.Mgr_error.No_home_socket { device = "d"; socket = "s" }))
        12;
      check_code "No_path is 13" (Err.Mgr (R.Mgr_error.No_path { src = "a"; dst = "b" })) 13;
      check_code "No_uplink is 14" (Err.Mgr (R.Mgr_error.No_uplink "x")) 14;
      check_code "No_downlink is 15" (Err.Mgr (R.Mgr_error.No_downlink "x")) 15;
      check_code "Capacity_exhausted is 16"
        (Err.Mgr (R.Mgr_error.Capacity_exhausted { tenant = 1; rate = 1.0; best_ratio = 2.0 }))
        16;
      check_code "Not_a_pipe is 17" (Err.Mgr R.Mgr_error.Not_a_pipe) 17;
      check_code "No_alternate_path is 18" (Err.Mgr R.Mgr_error.No_alternate_path) 18;
      check_code "Host_unreachable is 19" (Err.Mgr (R.Mgr_error.Host_unreachable "h")) 19;
      check_code "Retries_exhausted is 20"
        (Err.Mgr (R.Mgr_error.Retries_exhausted { host = "h"; command = "c" }))
        20;
      check_code "No_feasible_host is 21" (Err.Mgr (R.Mgr_error.No_feasible_host { tenant = 1 })) 21;
    ] )

let handlers_suite =
  ( "daemon handlers",
    [
      tc "hello / subscribe / shutdown replies" (fun () ->
          let h = Api.Handlers.local Api.Host_spec.default in
          (match Api.Handlers.run h (C.Hello { version = C.version }) with
          | Resp.Hello_ok { version; mode; preset } ->
            Alcotest.(check int) "version" C.version version;
            Alcotest.(check string) "mode" "host" mode;
            Alcotest.(check string) "preset" "two-socket" preset
          | _ -> Alcotest.fail "expected Hello_ok");
          (match Api.Handlers.run h (C.Subscribe C.S_telemetry) with
          | Resp.Ack -> ()
          | _ -> Alcotest.fail "expected Ack");
          match Api.Handlers.run h C.Shutdown with
          | Resp.Bye -> ()
          | _ -> Alcotest.fail "expected Bye");
      tc "unknown device comes back as Failed, exit 1" (fun () ->
          let h = Api.Handlers.local Api.Host_spec.default in
          match Api.Handlers.run h (C.Ping { src = "nope"; dst = "socket0"; count = 1; load = false })
          with
          | Resp.Err ((Err.Invalid msg | Err.Failed msg) as e) ->
            Alcotest.(check int) "exit code" 1 (Err.exit_code e);
            Alcotest.(check bool) "message names the device" true
              (String.length msg >= 14 && String.sub msg (String.length msg - 14) 14 = "no device nope")
          | _ -> Alcotest.fail "expected Err Invalid/Failed");
      tc "admission refusal crosses as the typed Mgr payload" (fun () ->
          let h = Api.Handlers.local Api.Host_spec.default in
          let greedy =
            R.Intent.pipe ~tenant:1 ~src:"nic0" ~dst:"socket0" ~rate:(U.Units.gbytes_per_s 5000.0)
          in
          match Api.Handlers.run h (C.Submit greedy) with
          | Resp.Err (Err.Mgr (R.Mgr_error.Capacity_exhausted { tenant; _ }) as e) ->
            Alcotest.(check int) "tenant" 1 tenant;
            Alcotest.(check int) "exit code" 16 (Err.exit_code e)
          | _ -> Alcotest.fail "expected Capacity_exhausted");
      tc "fleet command on a host target is Unsupported, exit 4" (fun () ->
          let h = Api.Handlers.local Api.Host_spec.default in
          match Api.Handlers.run h (C.Fleet_run { rounds = 1 }) with
          | Resp.Err (Err.Unsupported _ as e) -> Alcotest.(check int) "exit code" 4 (Err.exit_code e)
          | _ -> Alcotest.fail "expected Err Unsupported");
      tc "host spec presets round-trip and reject junk" (fun () ->
          List.iter
            (fun name ->
              match Api.Host_spec.preset_of_name name with
              | Ok p -> Alcotest.(check string) name name (Api.Host_spec.preset_name p)
              | Error e -> Alcotest.fail e)
            [ "two-socket"; "dgx"; "epyc"; "minimal" ];
          match Api.Host_spec.preset_of_name "bogus" with
          | Ok _ -> Alcotest.fail "accepted a bogus preset"
          | Error _ -> ());
      tc "host spec overrides reach the host config" (fun () ->
          let plain = Api.Host_spec.config Api.Host_spec.default in
          let tweaked = Api.Host_spec.config (Api.Host_spec.make ~ddio:false ~mps:512 ()) in
          Alcotest.(check bool) "overrides change the config" true (plain <> tweaked));
    ] )

(* ------------------------------------------------------------------ *)
(* Transport-level protocol errors (single-threaded, pumped server)    *)
(* ------------------------------------------------------------------ *)

let temp_socket tag =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "ihnetd-%s-%d.sock" tag (Unix.getpid ()))

let pump srv n =
  for _ = 1 to n do
    ignore (Api.Server.step ~timeout:0.01 srv)
  done

let protocol_suite =
  ( "daemon protocol",
    [
      tc "version mismatch is refused and the connection closed" (fun () ->
          let path = temp_socket "ver" in
          let srv = Api.Server.create (Api.Handlers.local Api.Host_spec.default) path in
          Fun.protect
            ~finally:(fun () -> Api.Server.stop srv)
            (fun () ->
              let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
              Fun.protect
                ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
                (fun () ->
                  Unix.connect fd (Unix.ADDR_UNIX path);
                  Api.Wire.write_frame fd (C.to_json (C.Hello { version = C.version + 1 }));
                  pump srv 10;
                  (match Api.Wire.read_frame fd with
                  | Some j -> (
                    match Resp.of_json j with
                    | Ok (Resp.Err (Err.Protocol _)) -> ()
                    | Ok _ -> Alcotest.fail "expected a protocol error"
                    | Error e -> Alcotest.fail e)
                  | None -> Alcotest.fail "no reply");
                  pump srv 5;
                  Alcotest.(check bool) "connection closed after refusal" true
                    (Api.Wire.read_frame fd = None))));
      tc "command before hello is refused" (fun () ->
          let path = temp_socket "hello" in
          let srv = Api.Server.create (Api.Handlers.local Api.Host_spec.default) path in
          Fun.protect
            ~finally:(fun () -> Api.Server.stop srv)
            (fun () ->
              let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
              Fun.protect
                ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
                (fun () ->
                  Unix.connect fd (Unix.ADDR_UNIX path);
                  Api.Wire.write_frame fd (C.to_json C.Stats);
                  pump srv 10;
                  match Api.Wire.read_frame fd with
                  | Some j -> (
                    match Resp.of_json j with
                    | Ok (Resp.Err (Err.Protocol _)) -> ()
                    | Ok _ -> Alcotest.fail "expected a protocol error"
                    | Error e -> Alcotest.fail e)
                  | None -> Alcotest.fail "no reply")));
    ] )

(* ------------------------------------------------------------------ *)
(* Integration: one server, four concurrent clients, recorded session  *)
(* ------------------------------------------------------------------ *)

let not_err name = function
  | Resp.Err e -> Alcotest.fail (Printf.sprintf "%s: %s" name (Err.message e))
  | r -> r

let integration () =
  let path = temp_socket "integ" in
  let spec = Api.Host_spec.make ~seed:7 () in
  let host = Api.Host_spec.create_host spec in
  let buf = Buffer.create 65536 in
  let recorder =
    Rec.Recorder.attach ~label:"test-daemon" ~seed:7 ~digest_every:4
      ~sink:(Rec.Recorder.buffer_sink buf) (Ihnet.Host.fabric host)
  in
  let handlers = Api.Handlers.create ~recorder ~spec (Api.Handlers.Host host) in
  let srv = Api.Server.create ~push_every:1 handlers path in
  let server = Thread.create (fun () -> Api.Server.serve srv) () in
  let errors = ref [] in
  let errors_mu = Mutex.create () in
  let fail msg =
    Mutex.lock errors_mu;
    errors := msg :: !errors;
    Mutex.unlock errors_mu
  in
  (* all four workers hold their connection open until everyone has
     connected, so the server demonstrably serves 4 clients at once *)
  let connected = Atomic.make 0 in
  let peak = Atomic.make 0 in
  let worker i =
    try
      let c = Api.Client.connect path in
      Fun.protect
        ~finally:(fun () -> Api.Client.close c)
        (fun () ->
          Atomic.incr connected;
          while Atomic.get connected < 4 do
            Thread.yield ()
          done;
          (match Api.Client.call c C.Stats with
          | Resp.Stats_report { clients; _ } ->
            let rec bump () =
              let seen = Atomic.get peak in
              if clients > seen && not (Atomic.compare_and_set peak seen clients) then bump ()
            in
            bump ()
          | r -> ignore (not_err "stats" r));
          let dst = if i mod 2 = 0 then "socket0" else "socket1" in
          let flow =
            match
              Api.Client.call c (C.Flow_start { tenant = i; src = "ext"; dst; gbps = Some 1.0 })
            with
            | Resp.Flow_ok { flow } -> Some flow
            | r ->
              ignore (not_err "flow start" r);
              None
          in
          ignore (not_err "run" (Api.Client.call c (C.Run_for { ms = 0.05 })));
          if i = 0 then begin
            ignore
              (not_err "fault"
                 (Api.Client.call c
                    (C.Fault_inject
                       { a = "rp0.0"; b = "pciesw0"; factor = 0.5; extra_us = 0.0; loss = 0.0 })));
            ignore (not_err "clear" (Api.Client.call c (C.Fault_clear { a = "rp0.0"; b = "pciesw0" })))
          end;
          (match flow with
          | Some flow -> ignore (not_err "flow stop" (Api.Client.call c (C.Flow_stop { flow })))
          | None -> ()))
    with e -> fail (Printexc.to_string e)
  in
  let workers = List.init 4 (fun i -> Thread.create worker i) in
  List.iter Thread.join workers;
  (* one last client scans the fabric and shuts the daemon down (the
     scan's thaw may drain queued events, so the frozen digest it
     reports is not compared against the final state below) *)
  (let c = Api.Client.connect path in
   Fun.protect
     ~finally:(fun () -> Api.Client.close c)
     (fun () ->
       ignore
         (not_err "scan"
            (Api.Client.call c (C.Scan { ms = 0.1; load = false; step = None; snapshot = false })));
       match Api.Client.call c C.Shutdown with
       | Resp.Bye -> ()
       | r -> ignore (not_err "shutdown" r)));
  Thread.join server;
  Rec.Recorder.stop recorder;
  Alcotest.(check (list string)) "no client errors" [] !errors;
  Alcotest.(check bool)
    (Printf.sprintf "served 4 concurrent clients (peak %d)" (Atomic.get peak))
    true
    (Atomic.get peak >= 4);
  (* the recorded session replays bit-for-bit *)
  let trace =
    match Rec.Trace.parse (Buffer.contents buf) with
    | Ok t -> t
    | Error e -> Alcotest.fail ("trace parse: " ^ e)
  in
  (match Rec.Replay.run trace with
  | Error e -> Alcotest.fail ("replay: " ^ e)
  | Ok report ->
    if not (Rec.Replay.ok report) then
      Alcotest.fail (Format.asprintf "%a" Rec.Replay.pp_report report);
    Alcotest.(check bool) "digests were checked" true (report.Rec.Replay.digests_checked > 0));
  (* and the replayed final state matches the daemon's, register by
     register, out of band *)
  match Rec.Replay.scan_reference trace with
  | Error e -> Alcotest.fail ("scan reference: " ^ e)
  | Ok refs -> (
    match List.assoc_opt (-1) refs with
    | None -> Alcotest.fail "no final reference snapshot"
    | Some replayed -> (
      let live = Rec.Scanport.capture (Ihnet.Host.fabric host) in
      match Rec.Scanport.diff ~scope:`Arch live replayed with
      | None -> ()
      | Some m -> Alcotest.fail (Format.asprintf "%a" Rec.Scanport.pp_mismatch m)))

let integration_suite = ("daemon integration", [ tc "4 concurrent clients, replayed" integration ])

let suites =
  [ codec_suite; framing_suite; exit_code_suite; handlers_suite; protocol_suite; integration_suite ]
