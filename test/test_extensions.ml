(* Tests for the extension features: multimodal detection, CXL
   substrate, fabric event subscription, trace capture. *)

module E = Ihnet_engine
module T = Ihnet_topology
module U = Ihnet_util
module W = Ihnet_workload
module Mon = Ihnet_monitor

let tc name f = Alcotest.test_case name `Quick f

let make_host ?config ?(builder = T.Builder.two_socket_server) () =
  let topo = builder ?config () in
  let sim = E.Sim.create () in
  let fab = E.Fabric.create sim topo in
  (topo, sim, fab)

let dev topo name =
  match T.Topology.device_by_name topo name with
  | Some d -> d.T.Device.id
  | None -> Alcotest.failf "no device %s" name

let path fab a b =
  let topo = E.Fabric.topology fab in
  match T.Routing.shortest_path topo (dev topo a) (dev topo b) with
  | Some p -> p
  | None -> Alcotest.failf "no path %s->%s" a b

(* {1 Multimodal detector} *)

let feed_gaussian rng mm ~n ~mus ~sigma =
  let verdicts = ref [] in
  for i = 1 to n do
    let x = Array.map (fun mu -> mu +. U.Rng.gaussian rng 0.0 sigma) mus in
    verdicts := Mon.Multimodal.observe mm ~at:(float_of_int i) x :: !verdicts
  done;
  List.rev !verdicts

let multimodal_tests =
  [
    tc "learns then scores near zero in control" (fun () ->
        let mm = Mon.Multimodal.create ~warmup:50 ~series:[ "a"; "b"; "c" ] () in
        let rng = U.Rng.create 3 in
        let verdicts =
          feed_gaussian rng mm ~n:200 ~mus:[| 1.0; 5.0; 10.0 |] ~sigma:0.1
        in
        let alarms = List.filter (function Mon.Multimodal.Alarm _ -> true | _ -> false) verdicts in
        Alcotest.(check int) "quiet" 0 (List.length alarms);
        let scores =
          List.filter_map (function Mon.Multimodal.Score d -> Some d | _ -> None) verdicts
        in
        let mean = U.Stats.mean (Array.of_list scores) in
        Alcotest.(check bool) "score near zero" true (Float.abs mean < 1.0));
    tc "alarms on a joint 1-sigma shift across many dims" (fun () ->
        let series = List.init 12 (fun i -> Printf.sprintf "s%d" i) in
        let mm = Mon.Multimodal.create ~warmup:50 ~series () in
        let rng = U.Rng.create 7 in
        let mus = Array.make 12 1.0 in
        ignore (feed_gaussian rng mm ~n:100 ~mus ~sigma:0.1);
        Alcotest.(check bool) "quiet before" true (Mon.Multimodal.alarms mm = []);
        (* each dim shifts by only ~1.2 sigma *)
        let shifted = Array.map (fun m -> m +. 0.12) mus in
        ignore (feed_gaussian rng mm ~n:30 ~mus:shifted ~sigma:0.1);
        Alcotest.(check bool) "alarm fired" true (Mon.Multimodal.alarms mm <> []));
    tc "alarm drivers name the shifted dimension" (fun () ->
        let mm = Mon.Multimodal.create ~warmup:50 ~series:[ "quiet"; "culprit" ] () in
        let rng = U.Rng.create 11 in
        ignore (feed_gaussian rng mm ~n:80 ~mus:[| 1.0; 1.0 |] ~sigma:0.05);
        ignore (feed_gaussian rng mm ~n:30 ~mus:[| 1.0; 2.0 |] ~sigma:0.05);
        match Mon.Multimodal.alarms mm with
        | a :: _ -> (
          match a.Mon.Multimodal.drivers with
          | (name, z) :: _ ->
            Alcotest.(check string) "culprit named" "culprit" name;
            Alcotest.(check bool) "large z" true (z > 3.0)
          | [] -> Alcotest.fail "no drivers")
        | [] -> Alcotest.fail "no alarm");
    tc "arity mismatch rejected" (fun () ->
        let mm = Mon.Multimodal.create ~series:[ "a"; "b" ] () in
        Alcotest.check_raises "arity" (Invalid_argument "Multimodal.observe: arity mismatch")
          (fun () -> ignore (Mon.Multimodal.observe mm ~at:0.0 [| 1.0 |])));
    tc "feed assembles vectors from telemetry and deduplicates ticks" (fun () ->
        let mm = Mon.Multimodal.create ~warmup:2 ~series:[ "x"; "y" ] () in
        let tm = Mon.Telemetry.create () in
        Alcotest.(check bool) "no data yet" true (Mon.Multimodal.feed mm tm = None);
        Mon.Telemetry.record tm ~series:"x" ~at:1.0 1.0;
        Mon.Telemetry.record tm ~series:"y" ~at:1.0 2.0;
        Alcotest.(check bool) "first feed" true (Mon.Multimodal.feed mm tm <> None);
        (* same tick again: deduplicated *)
        Alcotest.(check bool) "dedup" true (Mon.Multimodal.feed mm tm = None);
        Mon.Telemetry.record tm ~series:"x" ~at:2.0 1.0;
        Mon.Telemetry.record tm ~series:"y" ~at:2.0 2.0;
        Alcotest.(check bool) "next tick" true (Mon.Multimodal.feed mm tm <> None));
    tc "empty series list rejected" (fun () ->
        Alcotest.check_raises "empty" (Invalid_argument "Multimodal.create: empty series list")
          (fun () -> ignore (Mon.Multimodal.create ~series:[] ())));
  ]

(* {1 CXL substrate} *)

let cxl_tests =
  [
    tc "two_socket_with_cxl validates and has the expander" (fun () ->
        let topo = T.Builder.two_socket_with_cxl () in
        Alcotest.(check bool) "valid" true (Result.is_ok (T.Topology.validate topo));
        match T.Topology.device_by_name topo "cxl0" with
        | Some d ->
          Alcotest.(check bool) "kind" true (d.T.Device.kind = T.Device.Cxl_device)
        | None -> Alcotest.fail "no cxl0");
    tc "device-to-host-DRAM is ~150ns as the paper quotes" (fun () ->
        let topo = T.Builder.two_socket_with_cxl () in
        let sim = E.Sim.create () in
        let fab = E.Fabric.create sim topo in
        let p = Option.get (T.Routing.shortest_path topo (dev topo "cxl0") (dev topo "dimm0.0.0")) in
        let lat = E.Fabric.path_latency fab p in
        Alcotest.(check bool) "in 130..170ns" true (lat >= 130.0 && lat <= 170.0));
    tc "cxl link is not a Figure-1 class and not pcie-positioned" (fun () ->
        let topo = T.Builder.two_socket_with_cxl () in
        let cxl_link =
          List.find
            (fun (l : T.Link.t) -> match l.T.Link.kind with T.Link.Cxl _ -> true | _ -> false)
            (T.Topology.links topo)
        in
        Alcotest.(check (option int)) "no class" None (T.Topology.figure1_class topo cxl_link);
        Alcotest.(check bool) "not pcie" true
          (T.Topology.pcie_position topo cxl_link = `Not_pcie));
    tc "flows run over cxl with near-wire efficiency" (fun () ->
        let topo = T.Builder.two_socket_with_cxl () in
        let sim = E.Sim.create () in
        let fab = E.Fabric.create sim topo in
        let p = Option.get (T.Routing.shortest_path topo (dev topo "cxl0") (dev topo "dimm0.0.0")) in
        let f = E.Fabric.start_flow fab ~tenant:1 ~path:p ~size:E.Flow.Unbounded () in
        (* bottleneck = the 25.6 GB/s DDR channel, not the 32 GB/s CXL phy *)
        Alcotest.(check bool) "channel-bound" true (f.E.Flow.rate > 24e9);
        E.Fabric.stop_flow fab f);
    tc "add_cxl_expander requires a root complex" (fun () ->
        let topo = T.Topology.create ~name:"bare" () in
        ignore (T.Topology.add_device topo ~name:"socket9" ~kind:(T.Device.Cpu_socket { cores = 1 }) ~socket:9);
        Alcotest.check_raises "no rc"
          (Invalid_argument "Builder.add_cxl_expander: socket has no root complex") (fun () ->
            ignore (T.Builder.add_cxl_expander topo ~name:"cxl9" ~socket:9)));
  ]

(* {1 Fabric events + trace capture} *)

let event_tests =
  [
    tc "start/complete/stop events fire in order" (fun () ->
        let _, sim, fab = make_host () in
        let log = ref [] in
        E.Fabric.subscribe fab (fun ev ->
            match ev with
            | E.Fabric.Flow_started _ -> log := "start" :: !log
            | E.Fabric.Flow_completed _ -> log := "complete" :: !log
            | E.Fabric.Flow_stopped _ -> log := "stop" :: !log
            | E.Fabric.Fault_injected _ -> log := "fault" :: !log
            | E.Fabric.Fault_cleared _ -> log := "clear" :: !log
            | E.Fabric.Limits_changed _ | E.Fabric.Config_changed _ | E.Fabric.Reallocated _
            | E.Fabric.All_faults_cleared | E.Fabric.Batch_started | E.Fabric.Batch_ended
            | E.Fabric.Synced | E.Fabric.Sensor_fault_injected _
            | E.Fabric.Sensor_fault_cleared _ -> ());
        let p = path fab "nic0" "dimm0.0.0" in
        ignore (E.Fabric.start_flow fab ~tenant:1 ~path:p ~size:(E.Flow.Bytes 1e6) ());
        let f2 = E.Fabric.start_flow fab ~tenant:1 ~path:p ~size:E.Flow.Unbounded () in
        E.Sim.run ~until:(U.Units.ms 1.0) sim;
        E.Fabric.stop_flow fab f2;
        E.Fabric.inject_fault fab 0 E.Fault.down;
        E.Fabric.clear_fault fab 0;
        Alcotest.(check (list string)) "sequence"
          [ "start"; "start"; "complete"; "stop"; "fault"; "clear" ]
          (List.rev !log));
    tc "trace capture records finite payload flows only" (fun () ->
        let _, sim, fab = make_host () in
        let tr = W.Trace.capture fab in
        let p = path fab "nic0" "dimm0.0.0" in
        ignore (E.Fabric.start_flow fab ~tenant:1 ~path:p ~size:(E.Flow.Bytes 1e6) ());
        ignore (E.Fabric.start_flow fab ~tenant:2 ~path:p ~size:E.Flow.Unbounded ());
        ignore
          (E.Fabric.start_flow fab ~tenant:0 ~cls:E.Flow.Probe ~path:p ~size:(E.Flow.Bytes 64.0) ());
        E.Sim.run ~until:(U.Units.ms 1.0) sim;
        Alcotest.(check int) "one event" 1 (W.Trace.length tr);
        let ev = List.hd (W.Trace.events tr) in
        Alcotest.(check string) "src" "nic0" ev.W.Trace.src;
        Alcotest.(check (float 0.0)) "bytes" 1e6 ev.W.Trace.bytes);
    tc "captured trace replays on a fresh host" (fun () ->
        let _, sim, fab = make_host () in
        let tr = W.Trace.capture fab in
        let p = path fab "nic0" "dimm0.0.0" in
        let rng = U.Rng.create 5 in
        let stream =
          W.Traffic.poisson_transfers fab ~rng ~tenant:1 ~rate_per_s:5_000.0
            ~size:(W.Traffic.Fixed 1e5) ~path:p ()
        in
        E.Sim.run ~until:(U.Units.ms 5.0) sim;
        W.Traffic.stop stream;
        let n = W.Trace.length tr in
        Alcotest.(check bool) "captured some" true (n > 5);
        (* replay on a new host *)
        let _, sim2, fab2 = make_host () in
        let stats = W.Trace.replay fab2 tr in
        E.Sim.run sim2;
        Alcotest.(check int) "all replayed" n stats.W.Trace.completed);
  ]

(* {1 Device failure} *)

let device_failure_tests =
  [
    tc "fail_device starves its flows; revive restores them" (fun () ->
        let topo, _, fab = make_host () in
        let p = path fab "gpu0" "dimm0.0.0" in
        let f = E.Fabric.start_flow fab ~tenant:1 ~path:p ~size:E.Flow.Unbounded () in
        let healthy = f.E.Flow.rate in
        E.Fabric.fail_device fab (dev topo "pciesw0");
        Alcotest.(check (float 0.0)) "starved" 0.0 f.E.Flow.rate;
        E.Fabric.revive_device fab (dev topo "pciesw0");
        Alcotest.(check (float 1e6)) "restored" healthy f.E.Flow.rate);
    tc "heartbeats lose every probe through a dead device" (fun () ->
        let topo, sim, fab = make_host () in
        let hb = Mon.Heartbeat.start fab () in
        E.Sim.run ~until:(U.Units.ms 8.0) sim;
        E.Fabric.fail_device fab (dev topo "pciesw0");
        E.Sim.run ~until:(U.Units.ms 12.0) sim;
        let lost =
          List.length
            (List.filter
               (fun (r : Mon.Heartbeat.probe_result) -> r.Mon.Heartbeat.outcome = `Lost)
               (Mon.Heartbeat.results hb))
        in
        (* every pair whose path crosses the switch: at least nic0/gpu0/ssd0 related *)
        Alcotest.(check bool) "many lost" true (lost >= 10);
        (* localization points at the switch's links — up to the serial
           ambiguity with the rc-rp segment above it, so check the
           top-score group *)
        (match Mon.Heartbeat.localize hb with
        | (top :: _) as suspects ->
          let sw = dev topo "pciesw0" in
          let top_group =
            List.filter
              (fun s -> s.Mon.Heartbeat.score >= top.Mon.Heartbeat.score -. 1e-9)
              suspects
          in
          Alcotest.(check bool) "top group touches the switch" true
            (List.exists
               (fun s ->
                 let l = T.Topology.link topo s.Mon.Heartbeat.link in
                 l.T.Link.a = sw || l.T.Link.b = sw)
               top_group)
        | [] -> Alcotest.fail "no suspects");
        Mon.Heartbeat.stop hb);
  ]

(* {1 Determinism} *)

let determinism_tests =
  let run_scenario seed =
    let topo = T.Builder.two_socket_server () in
    let sim = E.Sim.create () in
    let fab = E.Fabric.create ~seed sim topo in
    let kv = W.Kvstore.start fab (W.Kvstore.default_config ~tenant:1 ~nic:"nic0") in
    let st = W.Storage.start fab (W.Storage.default_config ~tenant:2 ~ssd:"ssd0" ~target:"dimm0.0.0") in
    E.Sim.run ~until:(U.Units.ms 10.0) sim;
    let result =
      ( U.Histogram.count (W.Kvstore.latencies kv),
        U.Histogram.percentile (W.Kvstore.latencies kv) 0.5,
        W.Storage.completed_ops st,
        W.Storage.bytes_moved st )
    in
    W.Kvstore.stop kv;
    W.Storage.stop st;
    result
  in
  [
    tc "identical seeds give identical runs" (fun () ->
        let a = run_scenario 11 and b = run_scenario 11 in
        Alcotest.(check bool) "equal" true (a = b));
    tc "different seeds differ" (fun () ->
        let a = run_scenario 11 and b = run_scenario 12 in
        Alcotest.(check bool) "not equal" true (a <> b));
  ]

(* {1 SLO compliance} *)

module R = Ihnet_manager

let slo_tests =
  [
    tc "no placements: empty report" (fun () ->
        let _, _, fab = make_host () in
        let mgr = R.Manager.create fab () in
        let report = R.Slo.check mgr in
        Alcotest.(check int) "no entries" 0 (List.length report.R.Slo.entries);
        Alcotest.(check int) "no violations" 0 report.R.Slo.violations);
    tc "unattached placement is inactive" (fun () ->
        let _, _, fab = make_host () in
        let mgr = R.Manager.create fab () in
        (match R.Manager.submit mgr (R.Intent.pipe ~tenant:1 ~src:"ext" ~dst:"socket0" ~rate:1e9) with
        | Ok _ -> ()
        | Error e -> Alcotest.fail (Ihnet_manager.Mgr_error.to_string e));
        let report = R.Slo.check mgr in
        (match report.R.Slo.entries with
        | [ e ] -> Alcotest.(check bool) "inactive" true (e.R.Slo.state = R.Slo.Inactive)
        | _ -> Alcotest.fail "expected one entry"));
    tc "guaranteed flow under attack is Met" (fun () ->
        let _, sim, fab = make_host () in
        let mgr = R.Manager.create fab () in
        (match R.Manager.submit mgr (R.Intent.pipe ~tenant:1 ~src:"ext" ~dst:"socket0" ~rate:5e9) with
        | Ok _ -> ()
        | Error e -> Alcotest.fail (Ihnet_manager.Mgr_error.to_string e));
        let p = T.Path.concat (path fab "ext" "nic0") (path fab "nic0" "socket0") in
        let f = E.Fabric.start_flow fab ~tenant:1 ~path:p ~size:E.Flow.Unbounded () in
        ignore (R.Manager.attach mgr f);
        let agg = W.Rdma.start_loopback fab ~tenant:2 ~nic:"nic0" () in
        E.Sim.run ~until:(U.Units.ms 1.0) sim;
        let report = R.Slo.check mgr in
        Alcotest.(check bool) "tenant compliant" true (R.Slo.tenant_compliant report ~tenant:1);
        Alcotest.(check int) "no violations" 0 report.R.Slo.violations;
        W.Rdma.stop_loopback agg);
    tc "violation reported when the floor is not honored" (fun () ->
        let _, sim, fab = make_host () in
        let mgr = R.Manager.create fab () in
        (match R.Manager.submit mgr (R.Intent.pipe ~tenant:1 ~src:"ext" ~dst:"socket0" ~rate:5e9) with
        | Ok _ -> ()
        | Error e -> Alcotest.fail (Ihnet_manager.Mgr_error.to_string e));
        let p = T.Path.concat (path fab "ext" "nic0") (path fab "nic0" "socket0") in
        let f = E.Fabric.start_flow fab ~tenant:1 ~path:p ~size:E.Flow.Unbounded () in
        ignore (R.Manager.attach mgr f);
        (* a fault halves the slot: the guarantee physically cannot hold *)
        let hop = List.nth p.T.Path.hops 1 in
        E.Fabric.inject_fault fab hop.T.Path.link.T.Link.id
          (E.Fault.degrade ~capacity_factor:0.1 ());
        E.Sim.run ~until:(U.Units.ms 1.0) sim;
        let report = R.Slo.check mgr in
        Alcotest.(check bool) "violated" true (report.R.Slo.violations > 0);
        Alcotest.(check bool) "tenant flagged" false (R.Slo.tenant_compliant report ~tenant:1));
    tc "demand below the guarantee is still compliant" (fun () ->
        let _, sim, fab = make_host () in
        let mgr = R.Manager.create fab () in
        (match R.Manager.submit mgr (R.Intent.pipe ~tenant:1 ~src:"ext" ~dst:"socket0" ~rate:5e9) with
        | Ok _ -> ()
        | Error e -> Alcotest.fail (Ihnet_manager.Mgr_error.to_string e));
        let p = T.Path.concat (path fab "ext" "nic0") (path fab "nic0" "socket0") in
        (* the tenant only offers 100 MB/s of its 5 GB/s guarantee *)
        let f = E.Fabric.start_flow fab ~tenant:1 ~demand:1e8 ~path:p ~size:E.Flow.Unbounded () in
        ignore (R.Manager.attach mgr f);
        E.Sim.run ~until:(U.Units.ms 1.0) sim;
        let report = R.Slo.check mgr in
        Alcotest.(check int) "no violations" 0 report.R.Slo.violations);
    tc "latency bound violations are caught" (fun () ->
        let _, sim, fab = make_host () in
        let mgr = R.Manager.create fab () in
        let intent =
          {
            (R.Intent.pipe ~tenant:1 ~src:"nic1" ~dst:"socket0" ~rate:1e9) with
            R.Intent.latency_bound = Some (U.Units.us 1.0);
          }
        in
        (match R.Manager.submit mgr intent with Ok _ -> () | Error e -> Alcotest.fail (Ihnet_manager.Mgr_error.to_string e));
        let p = path fab "nic1" "socket0" in
        let f = E.Fabric.start_flow fab ~tenant:1 ~demand:1e8 ~path:p ~size:E.Flow.Unbounded () in
        ignore (R.Manager.attach mgr f);
        E.Sim.run ~until:(U.Units.ms 1.0) sim;
        Alcotest.(check int) "met within bound" 0 (R.Slo.check mgr).R.Slo.violations;
        (* silent extra latency breaks the bound without touching rates *)
        let hop = List.hd p.T.Path.hops in
        E.Fabric.inject_fault fab hop.T.Path.link.T.Link.id
          { E.Fault.capacity_factor = 1.0; extra_latency = U.Units.us 5.0; loss_prob = 0.0 };
        E.Sim.run ~until:(U.Units.ms 2.0) sim;
        Alcotest.(check bool) "latency violation" true ((R.Slo.check mgr).R.Slo.violations > 0));
  ]

(* {1 Health report} *)

let health_tests =
  [
    tc "quiet host: nothing congested, no talkers" (fun () ->
        let _, _, fab = make_host () in
        let counter = Mon.Counter.create fab ~fidelity:Mon.Counter.Oracle in
        let r = Mon.Health.collect counter ~tenants:[ 1 ] () in
        Alcotest.(check int) "no congestion" 0 (List.length r.Mon.Health.congested);
        Alcotest.(check int) "no talkers" 0 (List.length r.Mon.Health.top_talkers));
    tc "aggressors show up as congestion and top talkers" (fun () ->
        let _, _, fab = make_host () in
        let lb = W.Rdma.start_loopback fab ~tenant:3 ~nic:"nic0" () in
        let counter = Mon.Counter.create fab ~fidelity:Mon.Counter.Oracle in
        let r = Mon.Health.collect counter ~tenants:[ 3 ] () in
        Alcotest.(check bool) "congested" true (r.Mon.Health.congested <> []);
        (match r.Mon.Health.top_talkers with
        | t :: _ ->
          Alcotest.(check int) "tenant 3" 3 t.Mon.Health.tenant;
          Alcotest.(check bool) "big" true (t.Mon.Health.rate > 10e9)
        | [] -> Alcotest.fail "no talkers");
        W.Rdma.stop_loopback lb);
    tc "hardware fidelity hides talkers but still sees congestion" (fun () ->
        let _, _, fab = make_host () in
        let lb = W.Rdma.start_loopback fab ~tenant:3 ~nic:"nic0" () in
        let counter = Mon.Counter.create fab ~fidelity:(Mon.Counter.Hardware { max_read_hz = 1e6 }) in
        let r = Mon.Health.collect counter ~tenants:[ 3 ] () in
        Alcotest.(check bool) "congested" true (r.Mon.Health.congested <> []);
        Alcotest.(check int) "no talkers" 0 (List.length r.Mon.Health.top_talkers);
        W.Rdma.stop_loopback lb);
    tc "monitoring overhead counts monitor traffic only" (fun () ->
        let _, _, fab = make_host () in
        let sampler =
          Mon.Sampler.start fab
            {
              (Mon.Sampler.default_config ()) with
              Mon.Sampler.processing =
                Mon.Sampler.Ship { collector = "socket0"; bytes_per_sample = 64.0 };
            }
        in
        let counter = Mon.Counter.create fab ~fidelity:Mon.Counter.Oracle in
        let r = Mon.Health.collect counter () in
        Alcotest.(check bool) "overhead visible" true (r.Mon.Health.monitoring_overhead > 0.0);
        Mon.Sampler.stop sampler);
  ]

(* {1 Heartbeat recovery} *)

let recovery_tests =
  [
    tc "heartbeats report healthy again after the fault clears" (fun () ->
        let topo, sim, fab = make_host () in
        let hb = Mon.Heartbeat.start fab () in
        E.Sim.run ~until:(U.Units.ms 8.0) sim;
        Alcotest.(check bool) "healthy before" true (Mon.Heartbeat.healthy hb);
        let bad =
          match T.Topology.links_between topo (dev topo "rp0.0") (dev topo "pciesw0") with
          | l :: _ -> l.T.Link.id
          | [] -> Alcotest.fail "no link"
        in
        E.Fabric.inject_fault fab bad
          { E.Fault.capacity_factor = 1.0; extra_latency = U.Units.us 5.0; loss_prob = 0.0 };
        E.Sim.run ~until:(U.Units.ms 11.0) sim;
        Alcotest.(check bool) "sick during fault" false (Mon.Heartbeat.healthy hb);
        E.Fabric.clear_fault fab bad;
        E.Sim.run ~until:(U.Units.ms 14.0) sim;
        Alcotest.(check bool) "healthy after repair" true (Mon.Heartbeat.healthy hb);
        Mon.Heartbeat.stop hb);
  ]

(* {1 The vnet illusion, taken literally} *)

module RM = Ihnet_manager

let vnet_sim_tests =
  [
    tc "a tenant can run a full simulation inside its own vnet" (fun () ->
        let _, _, fab = make_host () in
        let mgr = RM.Manager.create fab () in
        (match
           RM.Manager.submit mgr (RM.Intent.pipe ~tenant:1 ~src:"nic1" ~dst:"socket0" ~rate:4e9)
         with
        | Ok _ -> ()
        | Error e -> Alcotest.fail (Ihnet_manager.Mgr_error.to_string e));
        let vnet = RM.Manager.vnet mgr ~tenant:1 in
        (* the vnet is an ordinary topology: boot a fabric on it *)
        let vsim = E.Sim.create () in
        let vfab = E.Fabric.create vsim vnet in
        let nic = (Option.get (T.Topology.device_by_name vnet "nic1")).T.Device.id in
        let sock = (Option.get (T.Topology.device_by_name vnet "socket0")).T.Device.id in
        let p = Option.get (T.Routing.shortest_path vnet nic sock) in
        let f = E.Fabric.start_flow vfab ~tenant:1 ~path:p ~size:E.Flow.Unbounded () in
        (* inside the illusion, the tenant's "link capacity" IS its
           allocation: an elastic flow gets ~the guaranteed 4 GB/s
           (modulo PCIe header overhead on the pcie hop) *)
        Alcotest.(check bool) "illusion capacity" true
          (f.E.Flow.rate > 3.5e9 && f.E.Flow.rate <= 4.0e9));
  ]

(* {1 Fleet roll-up} *)

let fleet_tests =
  [
    tc "the congested host ranks first and needs attention" (fun () ->
        let member label ~loaded ~ddio_off =
          let config =
            if ddio_off then
              { T.Hostconfig.default with T.Hostconfig.ddio = T.Hostconfig.Ddio_off }
            else T.Hostconfig.default
          in
          let _, _, fab = make_host ~config () in
          if loaded then ignore (W.Rdma.start_loopback fab ~tenant:3 ~nic:"nic0" ());
          {
            Mon.Fleet.label;
            counter = Mon.Counter.create fab ~fidelity:Mon.Counter.Oracle;
            tenants = [ 3 ];
            slo = None;
          }
        in
        let fleet =
          Mon.Fleet.collect
            [
              member "quiet-host" ~loaded:false ~ddio_off:false;
              member "hot-host" ~loaded:true ~ddio_off:false;
              member "misconfigured-host" ~loaded:false ~ddio_off:true;
            ]
        in
        (match fleet.Mon.Fleet.hosts with
        | first :: _ -> Alcotest.(check string) "hot first" "hot-host" first.Mon.Fleet.label
        | [] -> Alcotest.fail "empty fleet");
        let attention =
          List.map (fun s -> s.Mon.Fleet.label) (Mon.Fleet.needs_attention fleet)
        in
        Alcotest.(check bool) "hot flagged" true (List.mem "hot-host" attention);
        Alcotest.(check bool) "misconfig flagged" true (List.mem "misconfigured-host" attention);
        Alcotest.(check bool) "quiet not flagged" false (List.mem "quiet-host" attention));
  ]

(* {1 Topology spec DSL} *)

let spec_tests =
  [
    tc "the documented example parses and validates" (fun () ->
        match T.Spec.parse T.Spec.example with
        | Ok topo ->
          Alcotest.(check string) "name" "my-server" (T.Topology.name topo);
          List.iter
            (fun name ->
              Alcotest.(check bool) (name ^ " exists") true
                (T.Topology.device_by_name topo name <> None))
            [ "socket0"; "socket1"; "sw0"; "nic0"; "gpu0"; "ssd0"; "nic1"; "gpu1"; "cxl0"; "ext" ]
        | Error e -> Alcotest.fail e);
    tc "a spec host runs real workloads" (fun () ->
        match T.Spec.parse T.Spec.example with
        | Error e -> Alcotest.fail e
        | Ok topo ->
          let sim = E.Sim.create () in
          let fab = E.Fabric.create sim topo in
          let kv = W.Kvstore.start fab (W.Kvstore.default_config ~tenant:1 ~nic:"nic0") in
          E.Sim.run ~until:(U.Units.ms 5.0) sim;
          Alcotest.(check bool) "served" true (W.Kvstore.achieved_rate kv > 0.0);
          W.Kvstore.stop kv);
    tc "config directives take effect" (fun () ->
        let text = "host h\nconfig ddio=off mps=128\nsocket 0\nnic n0 at 0:0 port=100\n" in
        match T.Spec.parse text with
        | Error e -> Alcotest.fail e
        | Ok topo ->
          let c = T.Topology.config topo in
          Alcotest.(check bool) "ddio off" true (c.T.Hostconfig.ddio = T.Hostconfig.Ddio_off);
          Alcotest.(check int) "mps" 128 c.T.Hostconfig.pcie_mps);
    tc "consecutive sockets are chained" (fun () ->
        let text = "socket 0\nsocket 1\nsocket 2\nnic n at 0:0 port=100\n" in
        match T.Spec.parse text with
        | Error e -> Alcotest.fail e
        | Ok topo ->
          let inter =
            List.filter
              (fun (l : T.Link.t) -> l.T.Link.kind = T.Link.Inter_socket)
              (T.Topology.links topo)
          in
          Alcotest.(check int) "two chain links" 2 (List.length inter));
    tc "errors carry line numbers" (fun () ->
        (match T.Spec.parse "socket 0\nbogus directive\n" with
        | Error e -> Alcotest.(check bool) "line 2" true (String.length e > 6 && String.sub e 0 6 = "line 2")
        | Ok _ -> Alcotest.fail "expected error");
        (match T.Spec.parse "socket 0\nnic n0 at 0:0\n" with
        | Error e -> Alcotest.(check bool) "mentions port" true (String.length e > 0)
        | Ok _ -> Alcotest.fail "nic without port must fail"));
    tc "attachment to unknown switch fails" (fun () ->
        match T.Spec.parse "socket 0\ngpu g on nowhere\n" with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "expected error");
    tc "switches nest below switches" (fun () ->
        let text =
          "socket 0\nswitch top at 0:0\nswitch leaf on top\nnic n0 on leaf port=100\ngpu g0 on top\n"
        in
        match T.Spec.parse text with
        | Error e -> Alcotest.fail e
        | Ok topo ->
          let sim = E.Sim.create () in
          let fab = E.Fabric.create sim topo in
          (* the nic's path to memory crosses both switches *)
          let nic = (Option.get (T.Topology.device_by_name topo "n0")).T.Device.id in
          let dimm = (Option.get (T.Topology.device_by_name topo "dimm0.0.0")).T.Device.id in
          let p = Option.get (T.Routing.shortest_path topo nic dimm) in
          let names =
            List.map (fun id -> (T.Topology.device topo id).T.Device.name) (T.Path.devices p)
          in
          Alcotest.(check bool) "via leaf" true (List.mem "leaf" names);
          Alcotest.(check bool) "via top" true (List.mem "top" names);
          ignore fab);
    tc "root ports are created on demand and shared" (fun () ->
        let text = "socket 0\nnic a at 0:0 port=100\ngpu b at 0:0\n" in
        match T.Spec.parse text with
        | Error e -> Alcotest.fail e
        | Ok topo ->
          (* both devices hang off the same rp0.0 *)
          let rp = Option.get (T.Topology.device_by_name topo "rp0.0") in
          Alcotest.(check int) "rp has 3 links" 3
            (List.length (T.Topology.neighbors topo rp.T.Device.id)));
  ]

(* {1 Scenarios} *)

let scenario_tests =
  [
    tc "every scenario starts, reports metrics, and tears down" (fun () ->
        List.iter
          (fun (name, _) ->
            let _, sim, fab = make_host () in
            match W.Scenario.find name with
            | None -> Alcotest.failf "scenario %s not found" name
            | Some make ->
              let h = make fab in
              Alcotest.(check string) "name matches" name h.W.Scenario.name;
              E.Sim.run ~until:(U.Units.ms 5.0) sim;
              let metrics = h.W.Scenario.metrics () in
              Alcotest.(check bool) (name ^ " has metrics") true (metrics <> []);
              List.iter
                (fun (k, v) ->
                  Alcotest.(check bool) (k ^ " non-empty") true (String.length v > 0))
                metrics;
              h.W.Scenario.stop ();
              E.Sim.run ~until:(U.Units.ms 6.0) sim;
              Alcotest.(check int) (name ^ " cleaned up") 0 (E.Fabric.flow_count fab))
          W.Scenario.all);
    tc "unknown scenario is None" (fun () ->
        Alcotest.(check bool) "none" true (W.Scenario.find "nope" = None));
  ]

(* {1 Telemetry CSV + Jain index} *)

let telemetry_export_tests =
  [
    tc "to_csv dumps selected series in order" (fun () ->
        let tm = Mon.Telemetry.create () in
        Mon.Telemetry.record tm ~series:"b" ~at:2.0 0.5;
        Mon.Telemetry.record tm ~series:"a" ~at:1.0 1.5;
        Mon.Telemetry.record tm ~series:"a" ~at:3.0 2.5;
        let csv = Mon.Telemetry.to_csv ~series:[ "a" ] tm in
        let lines = String.split_on_char '\n' (String.trim csv) in
        Alcotest.(check int) "header + 2" 3 (List.length lines);
        Alcotest.(check string) "header" "series,at_ns,value" (List.hd lines);
        Alcotest.(check string) "first" "a,1,1.5" (List.nth lines 1));
    tc "jain index: equal shares = 1, monopoly = 1/n" (fun () ->
        Alcotest.(check (float 1e-9)) "equal" 1.0 (U.Stats.jain_index [| 5.0; 5.0; 5.0 |]);
        Alcotest.(check (float 1e-9)) "monopoly" (1.0 /. 4.0)
          (U.Stats.jain_index [| 8.0; 0.0; 0.0; 0.0 |]);
        Alcotest.(check bool) "empty nan" true (Float.is_nan (U.Stats.jain_index [||]));
        Alcotest.(check bool) "zeros nan" true (Float.is_nan (U.Stats.jain_index [| 0.0; 0.0 |])));
    tc "health fairness reflects the traffic mix" (fun () ->
        let _, _, fab = make_host () in
        (* two tenants with very different rates *)
        ignore
          (E.Fabric.start_flow fab ~tenant:1 ~demand:20e9 ~path:(path fab "nic0" "socket0")
             ~llc_target:true ~size:E.Flow.Unbounded ());
        ignore
          (E.Fabric.start_flow fab ~tenant:2 ~demand:1e9 ~path:(path fab "nic1" "socket0")
             ~llc_target:true ~size:E.Flow.Unbounded ());
        let counter = Mon.Counter.create fab ~fidelity:Mon.Counter.Oracle in
        let r = Mon.Health.collect counter ~tenants:[ 1; 2 ] () in
        Alcotest.(check bool) "unfair mix" true
          ((not (Float.is_nan r.Mon.Health.tenant_fairness))
          && r.Mon.Health.tenant_fairness < 0.85));
  ]

(* {1 Experiment smoke tests (fast subset)} *)

let experiment_smoke =
  let smoke id =
    tc (id ^ " runs and matches") (fun () ->
        match Ihnet_experiments.Registry.find id with
        | None -> Alcotest.failf "unknown experiment %s" id
        | Some run ->
          let r = run () in
          Alcotest.(check bool)
            (id ^ " verdict has no MISMATCH")
            false
            (let v = r.Ihnet_experiments.Common.verdict in
             let rec contains i =
               i + 8 <= String.length v && (String.sub v i 8 = "MISMATCH" || contains (i + 1))
             in
             contains 0))
  in
  List.map smoke [ "E1"; "E2"; "E3"; "E13"; "A1"; "A3" ]

let suites =
  [
    ("ext.multimodal", multimodal_tests);
    ("ext.cxl", cxl_tests);
    ("ext.events", event_tests);
    ("ext.device-failure", device_failure_tests);
    ("ext.determinism", determinism_tests);
    ("ext.slo", slo_tests);
    ("ext.health", health_tests);
    ("ext.heartbeat-recovery", recovery_tests);
    ("ext.vnet-simulation", vnet_sim_tests);
    ("ext.fleet", fleet_tests);
    ("ext.spec", spec_tests);
    ("ext.scenario", scenario_tests);
    ("ext.telemetry-export", telemetry_export_tests);
    ("ext.experiments-smoke", experiment_smoke);
  ]
