(* Test-suite entry point: each [Test_*] module contributes suites. *)

let () =
  Alcotest.run "ihnet"
    (Test_util.suites @ Test_sketch.suites @ Test_topology.suites @ Test_engine.suites @ Test_workload.suites
   @ Test_monitor.suites @ Test_manager.suites @ Test_remediation.suites @ Test_host.suites @ Test_extensions.suites @ Test_properties.suites @ Test_fuzz_topology.suites @ Test_soak.suites @ Test_record.suites @ Test_scanport.suites @ Test_golden.suites @ Test_evidence.suites @ Test_parallel.suites @ Test_warm.suites @ Test_fleet.suites @ Test_daemon.suites)
