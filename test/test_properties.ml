(* Cross-cutting property-based tests: invariants that must hold for
   arbitrary inputs, checked with qcheck. *)

module E = Ihnet_engine
module T = Ihnet_topology
module U = Ihnet_util
module W = Ihnet_workload
module R = Ihnet_manager

let prop name ?(count = 200) gen f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count gen f)

(* {1 Fairshare} *)

let fairshare_props =
  [
    prop "weighted fairness on one link: rates proportional to weights"
      QCheck.(list_of_size Gen.(int_range 2 8) (float_range 0.5 8.0))
      (fun weights ->
        let demands =
          Array.of_list
            (List.map
               (fun w -> { E.Fairshare.weight = w; floor = 0.0; cap = infinity; usage = [ (0, 1.0) ] })
               weights)
        in
        let rates = E.Fairshare.allocate ~capacities:[| 100.0 |] demands in
        (* all unconstrained flows share one bottleneck: rate_i/w_i equal *)
        let ratios =
          Array.to_list (Array.mapi (fun i r -> r /. demands.(i).E.Fairshare.weight) rates)
        in
        match ratios with
        | [] -> true
        | r0 :: rest -> List.for_all (fun r -> Float.abs (r -. r0) < 1e-6 *. Float.max 1.0 r0) rest);
    prop "work conservation: a single bottleneck is filled"
      QCheck.(pair (int_range 1 10) (float_range 10.0 1000.0))
      (fun (n, cap) ->
        let demands =
          Array.init n (fun _ ->
              { E.Fairshare.weight = 1.0; floor = 0.0; cap = infinity; usage = [ (0, 1.0) ] })
        in
        let rates = E.Fairshare.allocate ~capacities:[| cap |] demands in
        let total = Array.fold_left ( +. ) 0.0 rates in
        Float.abs (total -. cap) < 1e-6 *. cap);
    prop "caps below fair share are exact"
      QCheck.(float_range 1.0 20.0)
      (fun cap_v ->
        let demands =
          [|
            { E.Fairshare.weight = 1.0; floor = 0.0; cap = cap_v; usage = [ (0, 1.0) ] };
            { E.Fairshare.weight = 1.0; floor = 0.0; cap = infinity; usage = [ (0, 1.0) ] };
          |]
        in
        let rates = E.Fairshare.allocate ~capacities:[| 100.0 |] demands in
        Float.abs (rates.(0) -. cap_v) < 1e-6
        && Float.abs (rates.(1) -. (100.0 -. cap_v)) < 1e-4);
    (* Differential oracle: the event-driven allocate must reproduce the
       round-based reference on arbitrary inputs — random resource
       pools, weights, floors (including jointly infeasible ones), caps
       and overlapping multi-resource usages. *)
    (let gen_case =
       QCheck.Gen.(
         int_range 1 8 >>= fun nr ->
         array_size (return nr) (float_range 5.0 500.0) >>= fun caps ->
         let gen_demand =
           float_range 0.1 8.0 >>= fun weight ->
           float_range 0.0 20.0 >>= fun floor ->
           oneof [ return infinity; float_range 0.1 50.0 ] >>= fun cap ->
           list_size (int_range 1 5)
             (pair (int_range 0 (nr - 1)) (float_range 0.5 2.0))
           >>= fun usage ->
           let usage = List.sort_uniq (fun (a, _) (b, _) -> compare a b) usage in
           return { E.Fairshare.weight; floor; cap; usage }
         in
         array_size (int_range 1 40) gen_demand >>= fun demands -> return (caps, demands))
     in
     let print (caps, demands) =
       let b = Buffer.create 256 in
       Buffer.add_string b "caps=[";
       Array.iter (fun c -> Buffer.add_string b (Printf.sprintf "%g;" c)) caps;
       Buffer.add_string b "] demands=[";
       Array.iter
         (fun (d : E.Fairshare.demand) ->
           Buffer.add_string b
             (Printf.sprintf "{w=%g f=%g c=%g u=[%s]};" d.weight d.floor d.cap
                (String.concat ";"
                   (List.map (fun (r, co) -> Printf.sprintf "%d:%g" r co) d.usage))))
         demands;
       Buffer.add_string b "]";
       Buffer.contents b
     in
     prop "event-driven allocate matches the reference oracle" ~count:1000
       (QCheck.make ~print gen_case)
       (fun (caps, demands) ->
         let fast = E.Fairshare.allocate ~capacities:caps demands in
         let oracle = E.Fairshare.allocate_reference ~capacities:caps demands in
         Array.for_all2
           (fun a b ->
             Float.abs (a -. b) <= 1e-6 *. Float.max 1.0 (Float.max (Float.abs a) (Float.abs b)))
           fast oracle));
  ]

(* {1 Routing optimality} *)

let routing_props =
  let topo = T.Builder.two_socket_server () in
  let n = T.Topology.device_count topo in
  (* exhaustive shortest-path latencies by Bellman-Ford-ish relaxation,
     honoring the same transit rule as Dijkstra *)
  let brute_force src =
    let dist = Array.make n infinity in
    dist.(src) <- 0.0;
    for _ = 1 to n do
      List.iter
        (fun (l : T.Link.t) ->
          let w = l.T.Link.base_latency +. 1e-9 in
          let relax a b =
            let transit_ok = a = src || T.Device.can_transit (T.Topology.device topo a) in
            if transit_ok && dist.(a) +. w < dist.(b) then dist.(b) <- dist.(a) +. w
          in
          relax l.T.Link.a l.T.Link.b;
          relax l.T.Link.b l.T.Link.a)
        (T.Topology.links topo)
    done;
    dist
  in
  [
    prop "dijkstra distance equals brute-force relaxation"
      QCheck.(pair (int_range 0 100) (int_range 0 100))
      (fun (a, b) ->
        let a = a mod n and b = b mod n in
        let expected = (brute_force a).(b) in
        match T.Routing.shortest_path topo a b with
        | None -> expected = infinity
        | Some p ->
          let got =
            List.fold_left
              (fun acc (l : T.Link.t) -> acc +. l.T.Link.base_latency +. 1e-9)
              0.0 (T.Path.links p)
          in
          Float.abs (got -. expected) < 1e-6);
  ]

(* {1 Path algebra} *)

let path_props =
  let topo = T.Builder.two_socket_server () in
  let n = T.Topology.device_count topo in
  let reverse (p : T.Path.t) =
    {
      T.Path.src = p.T.Path.dst;
      dst = p.T.Path.src;
      hops =
        List.rev_map
          (fun (h : T.Path.hop) -> { h with T.Path.dir = T.Link.opposite h.T.Path.dir })
          p.T.Path.hops;
    }
  in
  [
    prop "reverse is an involution and stays well-formed"
      QCheck.(pair (int_range 0 100) (int_range 0 100))
      (fun (a, b) ->
        let a = a mod n and b = b mod n in
        match T.Routing.shortest_path topo a b with
        | None -> true
        | Some p ->
          let r = reverse p in
          T.Path.well_formed topo r && reverse r = p);
    prop "concat of a path split at any hop reproduces it"
      QCheck.(pair (int_range 0 100) (int_range 0 100))
      (fun (a, b) ->
        let a = a mod n and b = b mod n in
        match T.Routing.shortest_path topo a b with
        | None | Some { T.Path.hops = []; _ } -> true
        | Some p ->
          let hops = Array.of_list p.T.Path.hops in
          let k = Array.length hops / 2 in
          let devs = Array.of_list (T.Path.devices p) in
          let mid = devs.(k) in
          let left = { T.Path.src = p.T.Path.src; dst = mid; hops = Array.to_list (Array.sub hops 0 k) } in
          let right =
            { T.Path.src = mid; dst = p.T.Path.dst; hops = Array.to_list (Array.sub hops k (Array.length hops - k)) }
          in
          T.Path.concat left right = p);
  ]

(* {1 Scheduler ledger} *)

let scheduler_props =
  [
    prop "random place/release sequences keep the ledger sane" ~count:100
      QCheck.(list_of_size Gen.(int_range 1 30) (pair (int_range 0 5) (float_range 0.1 20.0)))
      (fun ops ->
        let topo = T.Builder.two_socket_server () in
        let sched = R.Scheduler.create topo () in
        let endpoints = [| "nic0"; "nic1"; "gpu0"; "ssd0"; "gpu1"; "nic2" |] in
        let placed = ref [] in
        List.iter
          (fun (which, gb) ->
            if which < 4 || !placed = [] then begin
              (* place *)
              let src = endpoints.(which mod Array.length endpoints) in
              match
                R.Interpreter.compile topo
                  (R.Intent.pipe ~tenant:1 ~src ~dst:"socket0" ~rate:(gb *. 1e9))
              with
              | Ok [ req ] -> (
                match R.Scheduler.place sched req with
                | Ok p -> placed := p :: !placed
                | Error _ -> ())
              | Ok _ | Error _ -> ()
            end
            else begin
              (* release the most recent *)
              match !placed with
              | p :: rest ->
                R.Scheduler.release sched p;
                placed := rest
              | [] -> ()
            end)
          ops;
        (* invariant: no link over headroom, total = sum of live placements *)
        let ok_ratios =
          List.for_all
            (fun (l : T.Link.t) ->
              R.Scheduler.reservation_ratio sched l.T.Link.id T.Link.Fwd <= 1.0 +. 1e-9
              && R.Scheduler.reservation_ratio sched l.T.Link.id T.Link.Rev <= 1.0 +. 1e-9)
            (T.Topology.links topo)
        in
        let expected_total =
          List.fold_left
            (fun acc (p : R.Placement.t) ->
              acc +. (p.R.Placement.rate *. float_of_int (T.Path.hop_count p.R.Placement.path)))
            0.0 !placed
        in
        ok_ratios && Float.abs (R.Scheduler.total_reserved sched -. expected_total) < 1.0);
  ]

(* {1 Histogram accuracy} *)

let histogram_props =
  [
    prop "histogram percentiles within 4% of exact"
      QCheck.(list_of_size Gen.(int_range 50 300) (float_range 1.0 1e6))
      (fun xs ->
        let h = U.Histogram.create ~sub:64 () in
        List.iter (U.Histogram.add h) xs;
        let sorted = Array.of_list xs in
        Array.sort compare sorted;
        List.for_all
          (fun q ->
            let exact = U.Stats.percentile sorted q in
            let approx = U.Histogram.percentile h q in
            Float.abs (approx -. exact) /. exact < 0.04
            (* bucket quantization can pick a neighbouring sample: also
               accept being within one sample of the exact rank *)
            || Array.exists (fun v -> Float.abs (approx -. v) /. v < 0.04) sorted)
          [ 0.5; 0.9; 0.99 ]);
  ]

(* {1 Trace CSV} *)

let trace_props =
  [
    prop "csv round trip preserves every event" ~count:100
      QCheck.(
        list_of_size
          Gen.(int_range 0 30)
          (quad (float_range 0.0 1e9) (int_range 0 5) (int_range 0 5) (float_range 1.0 1e9)))
      (fun evs ->
        let names = [| "nic0"; "gpu0"; "ssd0"; "socket0"; "dimm0.0.0"; "ext" |] in
        let tr = W.Trace.empty () in
        List.iter
          (fun (at, s, d, bytes) ->
            W.Trace.add tr
              {
                W.Trace.at = Float.round at;
                src = names.(s);
                dst = names.(d);
                bytes = Float.round bytes;
                tenant = s + d;
              })
          evs;
        match W.Trace.of_csv (W.Trace.to_csv tr) with
        | Ok tr' -> W.Trace.events tr' = W.Trace.events tr
        | Error _ -> false);
  ]

(* {1 Sim ordering} *)

let sim_props =
  [
    prop "events always fire in non-decreasing time order"
      QCheck.(list_of_size Gen.(int_range 1 50) (float_range 0.0 1e6))
      (fun delays ->
        let sim = E.Sim.create () in
        let fired = ref [] in
        List.iter (fun d -> E.Sim.schedule sim ~after:d (fun s -> fired := E.Sim.now s :: !fired)) delays;
        E.Sim.run sim;
        let times = List.rev !fired in
        List.length times = List.length delays
        && fst
             (List.fold_left
                (fun (ok, prev) t -> (ok && t >= prev, t))
                (true, neg_infinity) times));
  ]

(* {1 Byte conservation} *)

let conservation_props =
  [
    prop "counter bytes equal rate * time for constant flows" ~count:50
      QCheck.(pair (float_range 0.1 5.0) (float_range 0.5 5.0))
      (fun (gb, ms) ->
        let topo = T.Builder.minimal () in
        let sim = E.Sim.create () in
        let fab = E.Fabric.create sim topo in
        let dev n = (Option.get (T.Topology.device_by_name topo n)).T.Device.id in
        let p = Option.get (T.Routing.shortest_path topo (dev "nic0") (dev "dimm0.0.0")) in
        let rate = gb *. 1e9 in
        ignore (E.Fabric.start_flow fab ~tenant:1 ~demand:rate ~path:p ~size:E.Flow.Unbounded ());
        E.Sim.run ~until:(U.Units.ms ms) sim;
        (* last hop is a memory channel: coefficient 1, so wire = goodput *)
        let hop = List.nth p.T.Path.hops (List.length p.T.Path.hops - 1) in
        let bytes = E.Fabric.link_bytes fab hop.T.Path.link.T.Link.id hop.T.Path.dir in
        let expected = rate *. (ms /. 1e3) in
        Float.abs (bytes -. expected) < 1e-6 *. expected +. 1.0);
  ]

let suites =
  [
    ("props.fairshare", fairshare_props);
    ("props.routing", routing_props);
    ("props.path", path_props);
    ("props.scheduler", scheduler_props);
    ("props.histogram", histogram_props);
    ("props.trace", trace_props);
    ("props.sim", sim_props);
    ("props.conservation", conservation_props);
  ]
