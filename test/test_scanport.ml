(* Out-of-band scanport tests: codec round-trip, diff semantics,
   freeze/single-step, and the differential determinism property — the
   scan chain (and its digest) must be bit-identical across
   reallocation pool widths and warm vs cold solver. *)

module U = Ihnet_util
module T = Ihnet_topology
module E = Ihnet_engine
module Rec = Ihnet_record

let tc name f = Alcotest.test_case name `Quick f

let prop name ?(count = 30) gen f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count gen f)

(* {1 A deterministic loaded fabric driven from a command script} *)

let make_fabric ?domains ?warm () =
  let topo = T.Builder.two_socket_server () in
  let sim = E.Sim.create () in
  let fab = E.Fabric.create ~seed:42 ?domains ?warm sim topo in
  (sim, fab)

let dev topo name =
  match T.Topology.device_by_name topo name with
  | Some d -> d.T.Device.id
  | None -> failwith ("test_scanport: no device " ^ name)

let path_between fab a b =
  let topo = E.Fabric.topology fab in
  Option.get (T.Routing.shortest_path topo (dev topo a) (dev topo b))

let endpoints =
  [| ("gpu0", "nic0"); ("ext", "gpu0"); ("nic0", "dimm0.0.0"); ("gpu0", "ssd0"); ("ext", "gpu1") |]

(* Interpret a list of small ints as a command script against the
   fabric: starts (bounded and unbounded), stops, fault inject/clear
   and time advances. Everything derives from the codes, so the same
   script replays identically on every fabric configuration. *)
let apply_ops (sim, fab) ops =
  let unbounded = ref [] in
  let nlinks = List.length (T.Topology.links (E.Fabric.topology fab)) in
  List.iter
    (fun code ->
      let code = abs code in
      let a, b = endpoints.(code / 7 mod Array.length endpoints) in
      match code mod 7 with
      | 0 | 1 ->
        let f =
          E.Fabric.start_flow fab ~tenant:(1 + (code mod 5))
            ~weight:(1.0 +. float_of_int (code mod 3))
            ~path:(path_between fab a b) ~size:E.Flow.Unbounded ()
        in
        unbounded := f :: !unbounded
      | 2 ->
        ignore
          (E.Fabric.start_flow fab ~tenant:(1 + (code mod 5))
             ~path:(path_between fab a b)
             ~size:(E.Flow.Bytes (1e5 +. (1e4 *. float_of_int (code mod 11))))
             ())
      | 3 -> (
        match !unbounded with
        | f :: rest ->
          E.Fabric.stop_flow fab f;
          unbounded := rest
        | [] -> ())
      | 4 ->
        E.Fabric.inject_fault fab (code mod nlinks)
          { E.Fault.capacity_factor = 0.5; extra_latency = 500.0; loss_prob = 0.0 }
      | 5 -> E.Fabric.clear_fault fab (code mod nlinks)
      | _ -> E.Sim.run ~until:(E.Sim.now sim +. (5e4 *. float_of_int (1 + (code mod 8)))) sim)
    ops;
  E.Sim.run ~until:(E.Sim.now sim +. 1e6) sim

let scan_after ?domains ?warm ops =
  let sim, fab = make_fabric ?domains ?warm () in
  apply_ops (sim, fab) ops;
  Rec.Scanport.capture fab

let loaded_snapshot () = scan_after [ 3; 8; 16; 23; 6; 31; 44; 12 ]

(* {1 Unit tests} *)

let unit_tests =
  [
    tc "capture reads a non-trivial chain" (fun () ->
        let s = loaded_snapshot () in
        Alcotest.(check bool) "has registers" true (List.length s.Rec.Scanport.s_regs > 50);
        Alcotest.(check int) "version" Rec.Scanport.version s.Rec.Scanport.s_version;
        Alcotest.(check int64) "digest is the arch fold" s.Rec.Scanport.s_digest
          (Rec.Scanport.digest s));
    tc "find locates registers by path" (fun () ->
        let s = loaded_snapshot () in
        (match Rec.Scanport.find s "epoch" with
        | Some (Rec.Scanport.Int e) -> Alcotest.(check int) "epoch" s.Rec.Scanport.s_epoch e
        | _ -> Alcotest.fail "no epoch register");
        Alcotest.(check bool) "absent path" true (Rec.Scanport.find s "no/such/register" = None));
    tc "json round-trips bit-exactly" (fun () ->
        let s = loaded_snapshot () in
        let s' = Rec.Scanport.of_json (Rec.Scanport.to_json s) in
        Alcotest.(check bool) "equal" true (s = s'));
    tc "save/load round-trips through a file" (fun () ->
        let s = loaded_snapshot () in
        let file = Filename.temp_file "scanport" ".scan.json" in
        Fun.protect
          ~finally:(fun () -> Sys.remove file)
          (fun () ->
            Rec.Scanport.save file s;
            match Rec.Scanport.load file with
            | Ok s' -> Alcotest.(check bool) "equal" true (s = s')
            | Error e -> Alcotest.fail e));
    tc "of_json rejects a tampered digest" (fun () ->
        let s = loaded_snapshot () in
        let bad = { s with Rec.Scanport.s_digest = Int64.lognot s.Rec.Scanport.s_digest } in
        Alcotest.(check bool) "raises" true
          (try
             ignore (Rec.Scanport.of_json (Rec.Scanport.to_json bad));
             false
           with Rec.Trace.Parse_error _ -> true));
    tc "diff of identical snapshots is clean" (fun () ->
        let a = loaded_snapshot () and b = loaded_snapshot () in
        Alcotest.(check bool) "arch" true (Rec.Scanport.diff a b = None);
        Alcotest.(check bool) "all" true (Rec.Scanport.diff ~scope:`All a b = None));
    tc "diff names the first divergent register in chain order" (fun () ->
        let a = scan_after [ 3; 8; 16 ] and b = scan_after [ 3; 8; 16; 6 ] in
        match Rec.Scanport.diff a b with
        | None -> Alcotest.fail "expected a mismatch"
        | Some m ->
          (* the chain leads with the clock, which must differ after
             more simulated work *)
          Alcotest.(check string) "path" "clock/now" m.Rec.Scanport.d_path;
          Alcotest.(check bool) "counts" true (m.Rec.Scanport.d_total > 0));
    tc "warm and cold runs diff clean on arch, dirty on micro" (fun () ->
        let ops = [ 3; 8; 16; 23; 6; 31 ] in
        let w = scan_after ~warm:true ops and c = scan_after ~warm:false ops in
        Alcotest.(check bool) "arch clean" true (Rec.Scanport.diff w c = None);
        Alcotest.(check int64) "digests equal" (Rec.Scanport.digest w) (Rec.Scanport.digest c);
        match Rec.Scanport.diff ~scope:`All w c with
        | Some m ->
          (* warm/enabled is the first micro register that can differ *)
          Alcotest.(check string) "micro path" "warm/enabled" m.Rec.Scanport.d_path
        | None -> Alcotest.fail "warm flag should differ at `All scope");
    tc "capture is a pure read" (fun () ->
        let sim, fab = make_fabric () in
        apply_ops (sim, fab) [ 3; 8; 16; 23 ];
        let a = Rec.Scanport.capture fab in
        (* scan ten more times, then compare against the first: any
           state movement (RNG, clock, generations) would show *)
        for _ = 1 to 10 do
          ignore (Rec.Scanport.capture fab)
        done;
        let b = Rec.Scanport.capture fab in
        Alcotest.(check bool) "identical" true (a = b));
    tc "freeze and single-step epochs" (fun () ->
        let sim, fab = make_fabric () in
        apply_ops (sim, fab) [ 3; 8; 2; 16; 2; 23 ];
        (* queue future work so stepping has events to execute *)
        for i = 0 to 5 do
          let a, b = endpoints.(i mod Array.length endpoints) in
          ignore
            (E.Fabric.start_flow fab ~tenant:1 ~path:(path_between fab a b)
               ~size:(E.Flow.Bytes 2e5) ())
        done;
        let fz = Rec.Scanport.freeze fab in
        let e0 = E.Fabric.scan_epoch fab in
        let ran = Rec.Scanport.step fz 1 in
        Alcotest.(check int) "one epoch ran" 1 ran;
        Alcotest.(check bool) "epoch advanced" true (E.Fabric.scan_epoch fab > e0);
        let more = Rec.Scanport.step fz 3 in
        Alcotest.(check bool) "at most 3" true (more <= 3);
        Alcotest.(check int) "stepped total" (1 + more) (Rec.Scanport.epochs_stepped fz);
        Rec.Scanport.thaw fz;
        Rec.Scanport.thaw fz;
        Alcotest.(check bool) "step after thaw refused" true
          (try
             ignore (Rec.Scanport.step fz 1);
             false
           with Invalid_argument _ -> true));
  ]

(* {1 The differential property}

   One random command script, five fabric configurations: pool widths
   1/2/4 warm, plus cold at widths 1 and 4. Every snapshot must carry
   the same architectural chain — equal digests and a clean default
   diff — and round-trip through the codec. *)

let gen_ops = QCheck.(list_of_size Gen.(int_range 1 24) (int_bound 120))

let property_tests =
  [
    prop "scan chain is identical across domains and warm/cold" gen_ops (fun ops ->
        let reference = scan_after ~domains:1 ops in
        let variants =
          [
            scan_after ~domains:2 ops;
            scan_after ~domains:4 ops;
            scan_after ~domains:1 ~warm:false ops;
            scan_after ~domains:4 ~warm:false ops;
          ]
        in
        List.for_all
          (fun s ->
            Rec.Scanport.digest s = Rec.Scanport.digest reference
            && Rec.Scanport.diff reference s = None)
          variants);
    prop "codec round-trips any reachable snapshot" gen_ops (fun ops ->
        let s = scan_after ops in
        Rec.Scanport.of_json (Rec.Scanport.to_json s) = s);
  ]

let suites = [ ("scanport.unit", unit_tests); ("scanport.property", property_tests) ]
