(* Domain-parallel reallocation: Pool unit behaviour, the determinism
   contract (a fabric's observable behaviour is bit-identical for every
   pool width), and a qcheck property driving random multi-component op
   sequences through a sequential and a 4-domain fabric side by side. *)

module E = Ihnet_engine
module T = Ihnet_topology
module U = Ihnet_util
module Mon = Ihnet_monitor
module Rec = Ihnet_record

let tc name f = Alcotest.test_case name `Quick f

(* {1 Pool} *)

let pool_tests =
  [
    tc "map returns results in index order" (fun () ->
        let p = U.Pool.create 4 in
        Alcotest.(check int) "size" 4 (U.Pool.size p);
        let got = U.Pool.map p 100 (fun i -> i * i) in
        Alcotest.(check (array int)) "squares" (Array.init 100 (fun i -> i * i)) got;
        (* batch smaller than the pool *)
        let small = U.Pool.map p 2 (fun i -> 10 * i) in
        Alcotest.(check (array int)) "small batch" [| 0; 10 |] small;
        U.Pool.shutdown p);
    tc "size-1 pool degenerates to Array.init" (fun () ->
        let p = U.Pool.create 0 in
        Alcotest.(check int) "clamped to 1" 1 (U.Pool.size p);
        Alcotest.(check (array int)) "sequential" [| 0; 1; 2 |] (U.Pool.map p 3 Fun.id);
        U.Pool.shutdown p);
    tc "exceptions propagate and the pool survives them" (fun () ->
        let p = U.Pool.create 3 in
        Alcotest.(check bool) "raises" true
          (try
             ignore (U.Pool.map p 8 (fun i -> if i = 5 then failwith "boom" else i));
             false
           with Failure m -> m = "boom");
        (* a failed batch must not poison the next one *)
        Alcotest.(check (array int)) "usable after" (Array.init 8 Fun.id)
          (U.Pool.map p 8 Fun.id);
        U.Pool.shutdown p);
    tc "shutdown is idempotent; map afterwards is rejected" (fun () ->
        let p = U.Pool.create 2 in
        U.Pool.shutdown p;
        U.Pool.shutdown p;
        Alcotest.(check bool) "map rejected" true
          (try
             ignore (U.Pool.map p 4 Fun.id);
             false
           with Invalid_argument _ -> true));
    tc "get returns one shared pool and grows it" (fun () ->
        let p1 = U.Pool.get 2 in
        let p2 = U.Pool.get 3 in
        Alcotest.(check bool) "same pool" true (p1 == p2);
        Alcotest.(check bool) "grown" true (U.Pool.size p2 >= 3));
    tc "host and fabric report the configured width" (fun () ->
        let h = Ihnet.Host.create ~domains:2 Ihnet.Host.Minimal in
        Alcotest.(check int) "domains" 2 (E.Fabric.domains (Ihnet.Host.fabric h));
        let h1 = Ihnet.Host.create Ihnet.Host.Minimal in
        Alcotest.(check int) "default" (U.Pool.default_domains ())
          (E.Fabric.domains (Ihnet.Host.fabric h1)));
  ]

(* {1 The determinism contract}

   One scripted multi-component scenario — eight link-disjoint
   gpu_i->nic_i streams plus cross-socket traffic, a mid-run fault and
   batched churn — executed on fabrics that differ only in pool width.
   The recorder trace (which digests every allocation table), the
   final per-flow rates, and the sampled telemetry must all be
   byte-identical. *)

let dev topo n =
  match T.Topology.device_by_name topo n with
  | Some d -> d.T.Device.id
  | None -> Alcotest.fail ("no device " ^ n)

let route topo a b =
  match T.Routing.shortest_path topo (dev topo a) (dev topo b) with
  | Some p -> p
  | None -> Alcotest.fail (Printf.sprintf "%s unreachable from %s" b a)

let alloc_snapshot fab =
  E.Fabric.refresh fab;
  List.sort compare
    (List.map (fun (f : E.Flow.t) -> (f.E.Flow.id, f.E.Flow.rate)) (E.Fabric.active_flows fab))

let watched_links = [ (0, T.Link.Fwd); (2, T.Link.Fwd); (5, T.Link.Rev) ]

let attach_sampler sim fab store ~until =
  E.Sim.every sim ~period:(U.Units.us 300.0) ~until (fun s ->
      List.iter
        (fun (l, dir) ->
          let series =
            Printf.sprintf "link.%d.%s.bytes" l
              (match dir with T.Link.Fwd -> "fwd" | T.Link.Rev -> "rev")
          in
          Mon.Telemetry.record store ~series ~at:(E.Sim.now s) (E.Fabric.link_bytes fab l dir))
        watched_links)

let run_scenario ~domains =
  let topo = T.Builder.dgx_like () in
  let sim = E.Sim.create () in
  let fab = E.Fabric.create ~seed:7 ~domains sim topo in
  let buf = Buffer.create 16384 in
  let rcd =
    Rec.Recorder.attach ~digest_every:2 ~label:"par" ~seed:7
      ~sink:(Rec.Recorder.buffer_sink buf) fab
  in
  let telemetry = Mon.Telemetry.create ~capacity_per_series:128 () in
  let total = U.Units.ms 3.0 in
  attach_sampler sim fab telemetry ~until:total;
  let local i = route topo (Printf.sprintf "gpu%d" i) (Printf.sprintf "nic%d" i) in
  let streams = ref [] in
  E.Fabric.batch fab (fun () ->
      for i = 0 to 7 do
        for j = 0 to 3 do
          streams :=
            E.Fabric.start_flow fab
              ~tenant:(1 + i)
              ~weight:(1.0 +. float_of_int (j mod 2))
              ~path:(local i) ~size:E.Flow.Unbounded ()
            :: !streams
        done
      done);
  (* weld two components together for a while *)
  E.Sim.schedule_at sim (U.Units.ms 0.5) (fun _ ->
      ignore
        (E.Fabric.start_flow fab ~tenant:20
           ~path:(route topo "gpu0" "nic3")
           ~size:(E.Flow.Bytes 8e6) ()));
  E.Sim.schedule_at sim (U.Units.ms 1.0) (fun _ ->
      let l = (List.hd (E.Fabric.active_flows fab)).E.Flow.path.T.Path.hops in
      let link = (List.hd l).T.Path.link.T.Link.id in
      E.Fabric.inject_fault fab link (E.Fault.degrade ~capacity_factor:0.4 ()));
  E.Sim.schedule_at sim (U.Units.ms 1.8) (fun _ ->
      E.Fabric.clear_all_faults fab;
      E.Fabric.batch fab (fun () ->
          List.iteri (fun i f -> if i mod 3 = 0 then E.Fabric.stop_flow fab f) !streams));
  E.Sim.run ~until:total sim;
  Rec.Recorder.stop rcd;
  (Buffer.contents buf, alloc_snapshot fab, Mon.Telemetry.to_csv telemetry)

let determinism_tests =
  [
    tc "trace, rates and telemetry are byte-identical at widths 1/2/4" (fun () ->
        let t1, a1, c1 = run_scenario ~domains:1 in
        List.iter
          (fun d ->
            let td, ad, cd = run_scenario ~domains:d in
            Alcotest.(check string) (Printf.sprintf "trace @%d" d) t1 td;
            Alcotest.(check bool) (Printf.sprintf "rates @%d" d) true (a1 = ad);
            Alcotest.(check string) (Printf.sprintf "telemetry @%d" d) c1 cd)
          [ 2; 4 ]);
  ]

(* {1 Property: parallel ≡ sequential on random op sequences}

   Random command sequences over a dgx host whose route set mixes the
   eight disjoint gpu_i->nic_i components with cross-component pairs —
   so the dirty-component partition seen by reallocate_now keeps
   changing shape — executed on a domains=1 and a domains=4 fabric.
   Final rate tables and telemetry CSV must match exactly. *)

type cmd =
  | Start of int * float option * int * float
  | Stop of int
  | Limits of int * float
  | Fault of int * float
  | Clear of int
  | Clear_all

let pp_cmd = function
  | Start (r, sz, tn, dem) ->
    Printf.sprintf "Start(route=%d,size=%s,tenant=%d,demand=%.3g)" r
      (match sz with Some b -> Printf.sprintf "%.3g" b | None -> "unbounded")
      tn dem
  | Stop i -> Printf.sprintf "Stop %d" i
  | Limits (i, w) -> Printf.sprintf "Limits(%d,w=%.3g)" i w
  | Fault (l, f) -> Printf.sprintf "Fault(%d,%.2f)" l f
  | Clear l -> Printf.sprintf "Clear %d" l
  | Clear_all -> "ClearAll"

let gen_cmds =
  QCheck.Gen.(
    let cmd =
      frequency
        [
          ( 6,
            map
              (fun ((r, sz), (tn, dem)) -> Start (r, sz, tn, dem))
              (pair
                 (pair (int_range 0 10) (opt (float_range 2e5 4e6)))
                 (pair (int_range 1 8) (float_range 1e9 1.2e10))) );
          (2, map (fun i -> Stop i) (int_range 0 40));
          (2, map2 (fun i w -> Limits (i, w)) (int_range 0 40) (float_range 0.5 4.0));
          (2, map2 (fun l f -> Fault (l, f)) (int_range 0 40) (float_range 0.05 0.9));
          (1, map (fun l -> Clear l) (int_range 0 40));
          (1, return Clear_all);
        ]
    in
    list_size (int_range 4 28) cmd)

let arb_cmds = QCheck.make ~print:QCheck.Print.(list (fun c -> pp_cmd c)) gen_cmds

let run_cmds ~domains cmds =
  let topo = T.Builder.dgx_like () in
  let sim = E.Sim.create () in
  let fab = E.Fabric.create ~seed:23 ~domains sim topo in
  let routes =
    Array.of_list
      (List.init 8 (fun i -> route topo (Printf.sprintf "gpu%d" i) (Printf.sprintf "nic%d" i))
      @ [ route topo "gpu0" "nic5"; route topo "gpu6" "nic1"; route topo "gpu2" "nic7" ])
  in
  let pcie =
    List.filter
      (fun (l : T.Link.t) -> match l.T.Link.kind with T.Link.Pcie _ -> true | _ -> false)
      (T.Topology.links topo)
    |> Array.of_list
  in
  let total = (float_of_int (List.length cmds) +. 4.0) *. U.Units.us 100.0 in
  let telemetry = Mon.Telemetry.create ~capacity_per_series:64 () in
  attach_sampler sim fab telemetry ~until:total;
  let flows = ref [||] in
  let nth_flow i =
    if Array.length !flows = 0 then None
    else
      let f = !flows.(i mod Array.length !flows) in
      if f.E.Flow.state = E.Flow.Running then Some f else None
  in
  let link i = pcie.(i mod Array.length pcie).T.Link.id in
  List.iteri
    (fun i c ->
      E.Sim.schedule_at sim
        (float_of_int (i + 1) *. U.Units.us 100.0)
        (fun _ ->
          match c with
          | Start (r, sz, tenant, demand) ->
            let f =
              E.Fabric.start_flow fab ~tenant ~demand
                ~path:routes.(r mod Array.length routes)
                ~size:(match sz with Some b -> E.Flow.Bytes b | None -> E.Flow.Unbounded)
                ()
            in
            flows := Array.append !flows [| f |]
          | Stop i -> Option.iter (fun f -> E.Fabric.stop_flow fab f) (nth_flow i)
          | Limits (i, w) ->
            Option.iter (fun f -> E.Fabric.set_flow_limits fab f ~weight:w ()) (nth_flow i)
          | Fault (l, factor) ->
            E.Fabric.inject_fault fab (link l) (E.Fault.degrade ~capacity_factor:factor ())
          | Clear l -> E.Fabric.clear_fault fab (link l)
          | Clear_all -> E.Fabric.clear_all_faults fab))
    cmds;
  E.Sim.run ~until:total sim;
  (alloc_snapshot fab, Mon.Telemetry.to_csv telemetry)

let run_property cmds =
  let seq_alloc, seq_csv = run_cmds ~domains:1 cmds in
  let par_alloc, par_csv = run_cmds ~domains:4 cmds in
  if seq_alloc <> par_alloc then
    QCheck.Test.fail_reportf "rate tables diverge: %d flow(s) sequential, %d parallel"
      (List.length seq_alloc) (List.length par_alloc);
  if seq_csv <> par_csv then
    QCheck.Test.fail_report "telemetry csv differs between domains=1 and domains=4";
  true

let property_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"parallel reallocation is bit-identical to sequential" ~count:25
         arb_cmds run_property);
  ]

let suites =
  [
    ("parallel.pool", pool_tests);
    ("parallel.determinism", determinism_tests);
    ("parallel.property", property_tests);
  ]
