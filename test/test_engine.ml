(* Unit, integration and property tests for ihnet_engine. *)

open Ihnet_engine
module T = Ihnet_topology
module U = Ihnet_util.Units

let tc name f = Alcotest.test_case name `Quick f
let check_close ?(eps = 1e-6) msg expected actual = Alcotest.(check (float eps)) msg expected actual

let dev_id topo name =
  match T.Topology.device_by_name topo name with
  | Some d -> d.T.Device.id
  | None -> Alcotest.failf "no device %s" name

let path topo a b =
  match T.Routing.shortest_path topo (dev_id topo a) (dev_id topo b) with
  | Some p -> p
  | None -> Alcotest.failf "no path %s->%s" a b

(* {1 Sim core} *)

let sim_tests =
  [
    tc "events fire in time order" (fun () ->
        let sim = Sim.create () in
        let log = ref [] in
        Sim.schedule sim ~after:30.0 (fun _ -> log := 3 :: !log);
        Sim.schedule sim ~after:10.0 (fun _ -> log := 1 :: !log);
        Sim.schedule sim ~after:20.0 (fun _ -> log := 2 :: !log);
        Sim.run sim;
        Alcotest.(check (list int)) "order" [ 1; 2; 3 ] (List.rev !log);
        check_close "clock" 30.0 (Sim.now sim));
    tc "equal-time events fire FIFO" (fun () ->
        let sim = Sim.create () in
        let log = ref [] in
        List.iter (fun i -> Sim.schedule sim ~after:5.0 (fun _ -> log := i :: !log)) [ 1; 2; 3 ];
        Sim.run sim;
        Alcotest.(check (list int)) "fifo" [ 1; 2; 3 ] (List.rev !log));
    tc "run ~until stops the clock exactly" (fun () ->
        let sim = Sim.create () in
        let fired = ref false in
        Sim.schedule sim ~after:100.0 (fun _ -> fired := true);
        Sim.run ~until:50.0 sim;
        Alcotest.(check bool) "not yet" false !fired;
        check_close "clock" 50.0 (Sim.now sim);
        Sim.run sim;
        Alcotest.(check bool) "eventually" true !fired);
    tc "events can schedule events" (fun () ->
        let sim = Sim.create () in
        let count = ref 0 in
        let rec tick _s =
          incr count;
          if !count < 5 then Sim.schedule sim ~after:1.0 tick
        in
        Sim.schedule sim ~after:1.0 tick;
        Sim.run sim;
        Alcotest.(check int) "five" 5 !count;
        check_close "clock" 5.0 (Sim.now sim));
    tc "every fires periodically until bound" (fun () ->
        let sim = Sim.create () in
        let count = ref 0 in
        Sim.every sim ~period:10.0 ~until:55.0 (fun _ -> incr count);
        Sim.run sim;
        Alcotest.(check int) "five ticks" 5 !count);
    tc "schedule_at clamps the past" (fun () ->
        let sim = Sim.create () in
        Sim.schedule sim ~after:10.0 (fun s -> Sim.schedule_at s 5.0 (fun _ -> ()));
        Sim.run sim;
        check_close "clock" 10.0 (Sim.now sim));
  ]

(* {1 Fairshare} *)

let fs_demand ?(weight = 1.0) ?(floor = 0.0) ?(cap = infinity) usage =
  { Fairshare.weight; floor; cap; usage }

let fairshare_tests =
  [
    tc "two equal flows split a link evenly" (fun () ->
        let rates =
          Fairshare.allocate ~capacities:[| 100.0 |]
            [| fs_demand [ (0, 1.0) ]; fs_demand [ (0, 1.0) ] |]
        in
        check_close "a" 50.0 rates.(0);
        check_close "b" 50.0 rates.(1));
    tc "weights bias the split" (fun () ->
        let rates =
          Fairshare.allocate ~capacities:[| 90.0 |]
            [| fs_demand ~weight:2.0 [ (0, 1.0) ]; fs_demand ~weight:1.0 [ (0, 1.0) ] |]
        in
        check_close "2/3" 60.0 rates.(0);
        check_close "1/3" 30.0 rates.(1));
    tc "caps are respected and spare capacity redistributed" (fun () ->
        let rates =
          Fairshare.allocate ~capacities:[| 100.0 |]
            [| fs_demand ~cap:10.0 [ (0, 1.0) ]; fs_demand [ (0, 1.0) ] |]
        in
        check_close "capped" 10.0 rates.(0);
        check_close "rest" 90.0 rates.(1));
    tc "floors are honored under pressure" (fun () ->
        let rates =
          Fairshare.allocate ~capacities:[| 100.0 |]
            [| fs_demand ~floor:80.0 [ (0, 1.0) ]; fs_demand [ (0, 1.0) ] |]
        in
        Alcotest.(check bool) "floor kept" true (rates.(0) >= 80.0 -. 1e-6);
        Alcotest.(check bool) "work conserving" true (rates.(0) +. rates.(1) >= 100.0 -. 1e-6));
    tc "infeasible floors scale down locally" (fun () ->
        let rates =
          Fairshare.allocate ~capacities:[| 100.0; 100.0 |]
            [|
              fs_demand ~floor:80.0 [ (0, 1.0) ];
              fs_demand ~floor:80.0 [ (0, 1.0) ];
              fs_demand ~floor:50.0 [ (1, 1.0) ];
            |]
        in
        check_close "scaled a" 50.0 rates.(0);
        check_close "scaled b" 50.0 rates.(1);
        (* the flow on the healthy resource keeps its full floor *)
        Alcotest.(check bool) "unaffected" true (rates.(2) >= 50.0 -. 1e-6));
    tc "multi-hop flow limited by its bottleneck" (fun () ->
        let rates =
          Fairshare.allocate ~capacities:[| 100.0; 30.0 |]
            [| fs_demand [ (0, 1.0); (1, 1.0) ]; fs_demand [ (0, 1.0) ] |]
        in
        check_close "bottlenecked" 30.0 rates.(0);
        check_close "fills the rest" 70.0 rates.(1));
    tc "coefficients consume extra capacity" (fun () ->
        (* coefficient 2: wire cost is twice the goodput *)
        let rates = Fairshare.allocate ~capacities:[| 100.0 |] [| fs_demand [ (0, 2.0) ] |] in
        check_close "half goodput" 50.0 rates.(0));
    tc "empty usage gets its cap" (fun () ->
        let rates = Fairshare.allocate ~capacities:[||] [| fs_demand ~cap:42.0 [] |] in
        check_close "cap" 42.0 rates.(0));
    tc "no demands, no rates" (fun () ->
        Alcotest.(check int) "empty" 0 (Array.length (Fairshare.allocate ~capacities:[| 1.0 |] [||])));
    tc "max_min_fair wrapper" (fun () ->
        let rates = Fairshare.max_min_fair ~capacities:[| 60.0 |] [| [ (0, 1.0) ]; [ (0, 1.0) ]; [ (0, 1.0) ] |] in
        Array.iter (fun r -> check_close "even" 20.0 r) rates);
  ]

(* Feasibility property: no resource over capacity, floors/caps respected. *)
let fairshare_properties =
  let gen =
    QCheck.make
      ~print:(fun _ -> "fairshare scenario")
      QCheck.Gen.(
        let* nres = int_range 1 5 in
        let* caps = array_size (return nres) (float_range 10.0 1000.0) in
        let* nflows = int_range 1 8 in
        let* flows =
          list_size (return nflows)
            (let* w = float_range 0.5 4.0 in
             let* floor = float_range 0.0 5.0 in
             let* cap_extra = float_range 0.0 500.0 in
             let* nuse = int_range 1 nres in
             let* res_ids = list_size (return nuse) (int_range 0 (nres - 1)) in
             let* coeffs = list_size (return nuse) (float_range 1.0 2.0) in
             let usage =
               List.sort_uniq (fun (a, _) (b, _) -> compare a b) (List.combine res_ids coeffs)
             in
             return (w, floor, floor +. cap_extra, usage))
        in
        return (caps, flows))
  in
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"allocation is feasible and bounded" ~count:300 gen
         (fun (caps, flows) ->
           let demands =
             Array.of_list
               (List.map
                  (fun (weight, floor, cap, usage) -> { Fairshare.weight; floor; cap; usage })
                  flows)
           in
           let rates = Fairshare.allocate ~capacities:caps demands in
           let nres = Array.length caps in
           let load = Array.make nres 0.0 in
           Array.iteri
             (fun i (d : Fairshare.demand) ->
               List.iter (fun (r, c) -> load.(r) <- load.(r) +. (rates.(i) *. c)) d.usage)
             demands;
           let feasible = Array.for_all2 (fun l c -> l <= c +. (1e-6 *. c) +. 1e-6) load caps in
           let capped =
             Array.for_all2 (fun r (d : Fairshare.demand) -> r <= d.cap +. 1e-6) rates demands
           in
           let nonneg = Array.for_all (fun r -> r >= -1e-9) rates in
           feasible && capped && nonneg));
  ]

(* {1 Latency model} *)

let latency_tests =
  [
    tc "zero load means base latency" (fun () ->
        check_close "base" 100.0 (Latency.hop_latency ~base:100.0 ~utilization:0.0 ()));
    tc "latency grows with utilization" (fun () ->
        let l50 = Latency.hop_latency ~base:100.0 ~utilization:0.5 () in
        let l90 = Latency.hop_latency ~base:100.0 ~utilization:0.9 () in
        Alcotest.(check bool) "monotone" true (l90 > l50 && l50 > 100.0));
    tc "inflation is capped" (fun () ->
        let l = Latency.hop_latency ~base:100.0 ~utilization:1.0 () in
        Alcotest.(check bool) "capped" true (l <= 100.0 *. Latency.max_inflation +. 1e-6));
    tc "fault extra applies before inflation" (fun () ->
        check_close "idle degraded" 600.0
          (Latency.hop_latency ~base:100.0 ~utilization:0.0 ~extra:500.0 ()));
    tc "serialization" (fun () ->
        check_close "1KB at 1GB/s = 1us" 1000.0
          (Latency.serialization ~bytes:1000.0 ~rate:1e9);
        check_close "infinite rate" 0.0 (Latency.serialization ~bytes:1e6 ~rate:infinity));
    tc "serialization at zero rate is stalled, not infinite" (fun () ->
        (* regression: bytes /. 0.0 used to return infinity, which then
           poisoned every sum it entered *)
        check_close "zero rate" Latency.stalled (Latency.serialization ~bytes:1000.0 ~rate:0.0);
        check_close "negative rate" Latency.stalled
          (Latency.serialization ~bytes:1000.0 ~rate:(-1.0));
        check_close "nan rate" Latency.stalled (Latency.serialization ~bytes:1000.0 ~rate:nan);
        Alcotest.(check bool) "finite" true
          (Float.is_finite (Latency.serialization ~bytes:1e30 ~rate:1e-30)));
  ]

(* {1 IOMMU model} *)

let iommu_tests =
  [
    tc "fits: no misses" (fun () ->
        check_close "0" 0.0 (Iommu.miss_rate ~entries:64 ~working_set_pages:64));
    tc "overflow raises miss rate" (fun () ->
        let m = Iommu.miss_rate ~entries:64 ~working_set_pages:256 in
        check_close "0.75" 0.75 m);
    tc "translation latency grows with working set" (fun () ->
        let iommu =
          T.Hostconfig.Iommu_on { iotlb_entries = 64; hit_latency = 10.0; miss_penalty = 250.0 }
        in
        let small = Iommu.expected_translation_latency iommu ~working_set_pages:32 in
        let large = Iommu.expected_translation_latency iommu ~working_set_pages:1024 in
        check_close "hit only" 10.0 small;
        Alcotest.(check bool) "more" true (large > 100.0));
    tc "off costs nothing" (fun () ->
        check_close "0" 0.0
          (Iommu.expected_translation_latency T.Hostconfig.Iommu_off ~working_set_pages:4096);
        check_close "1.0" 1.0
          (Iommu.bandwidth_overhead_factor T.Hostconfig.Iommu_off ~working_set_pages:4096
             ~payload_bytes:64));
  ]

(* {1 DDIO cache model} *)

let cache_tests =
  let ddio_on =
    T.Hostconfig.Ddio_on { llc_ways = 11; io_ways = 2; way_size = U.mib 1.5 }
  in
  [
    tc "slow writer fits in the IO ways" (fun () ->
        let c = Cache.create ddio_on in
        (* 3 MiB of IO ways, 50us reuse: fits up to ~63 GB/s *)
        check_close "hit" 1.0 (Cache.hit_rate c ~write_rate:10e9));
    tc "fast writers thrash" (fun () ->
        let c = Cache.create ddio_on in
        let h = Cache.hit_rate c ~write_rate:100e9 in
        Alcotest.(check bool) "partial" true (h < 0.9 && h > 0.1));
    tc "spill doubles missed bytes when on" (fun () ->
        let c = Cache.create ddio_on in
        let w = 100e9 in
        let h = Cache.hit_rate c ~write_rate:w in
        check_close ~eps:1.0 "spill" ((1.0 -. h) *. w *. 2.0) (Cache.spill_rate c ~write_rate:w));
    tc "ddio off sends everything to memory once" (fun () ->
        let c = Cache.create T.Hostconfig.Ddio_off in
        check_close "h=0" 0.0 (Cache.hit_rate c ~write_rate:1e9);
        check_close "1x" 1e9 (Cache.spill_rate c ~write_rate:1e9));
    tc "hit rate decreases with write rate" (fun () ->
        let c = Cache.create ddio_on in
        let prev = ref 1.1 in
        List.iter
          (fun w ->
            let h = Cache.hit_rate c ~write_rate:w in
            Alcotest.(check bool) "monotone" true (h <= !prev);
            prev := h)
          [ 1e9; 10e9; 50e9; 100e9; 200e9 ]);
  ]

(* {1 Fabric integration} *)

let fabric_tests =
  [
    tc "single flow gets the bottleneck rate" (fun () ->
        let topo = T.Builder.minimal () in
        let sim = Sim.create () in
        let fab = Fabric.create sim topo in
        let p = path topo "nic0" "dimm0.0.0" in
        let fl = Fabric.start_flow fab ~tenant:1 ~path:p ~size:Flow.Unbounded () in
        (* bottleneck = DDR channel 25.6 GB/s (PCIe gen4 x16 ~31.5 raw,
           less protocol efficiency ~0.91 => ~28.6 goodput) *)
        Alcotest.(check bool) "close to channel rate" true
          (fl.Flow.rate > 24e9 && fl.Flow.rate <= 25.7e9);
        Fabric.stop_flow fab fl);
    tc "finite flow completes at the expected time" (fun () ->
        let topo = T.Builder.minimal () in
        let sim = Sim.create () in
        let fab = Fabric.create sim topo in
        let p = path topo "nic0" "dimm0.0.0" in
        let done_at = ref nan in
        let fl =
          Fabric.start_flow fab ~tenant:1 ~path:p
            ~size:(Flow.Bytes 25.6e9) (* one second at channel rate *)
            ~on_complete:(fun f -> done_at := f.Flow.completed_at)
            ()
        in
        let expected = 25.6e9 /. fl.Flow.rate *. 1e9 in
        Sim.run sim;
        Alcotest.(check bool) "completed" true (fl.Flow.state = Flow.Completed);
        check_close ~eps:1e3 "time" expected !done_at);
    tc "two flows share a bottleneck link evenly" (fun () ->
        let topo = T.Builder.two_socket_server () in
        let sim = Sim.create () in
        let fab = Fabric.create sim topo in
        (* both flows traverse the switch upstream link rp0.0-pciesw0 *)
        let p1 = path topo "nic0" "dimm0.0.0" in
        let p2 = path topo "gpu0" "dimm0.0.1" in
        let f1 = Fabric.start_flow fab ~tenant:1 ~path:p1 ~size:Flow.Unbounded () in
        let f2 = Fabric.start_flow fab ~tenant:2 ~path:p2 ~size:Flow.Unbounded () in
        check_close ~eps:1e6 "even" f1.Flow.rate f2.Flow.rate;
        Alcotest.(check bool) "shared upstream" true
          (f1.Flow.rate +. f2.Flow.rate < 32e9));
    tc "rate-capped flow leaves capacity to others" (fun () ->
        let topo = T.Builder.minimal () in
        let sim = Sim.create () in
        let fab = Fabric.create sim topo in
        let p = path topo "nic0" "dimm0.0.0" in
        let f1 = Fabric.start_flow fab ~tenant:1 ~cap:(U.gbytes_per_s 1.0) ~path:p ~size:Flow.Unbounded () in
        let f2 = Fabric.start_flow fab ~tenant:2 ~path:p ~size:Flow.Unbounded () in
        check_close ~eps:1e6 "capped" 1e9 f1.Flow.rate;
        Alcotest.(check bool) "rest" true (f2.Flow.rate > 20e9));
    tc "stopping a flow frees bandwidth immediately" (fun () ->
        let topo = T.Builder.minimal () in
        let sim = Sim.create () in
        let fab = Fabric.create sim topo in
        let p = path topo "nic0" "dimm0.0.0" in
        let f1 = Fabric.start_flow fab ~tenant:1 ~path:p ~size:Flow.Unbounded () in
        let f2 = Fabric.start_flow fab ~tenant:2 ~path:p ~size:Flow.Unbounded () in
        let before = f2.Flow.rate in
        Fabric.stop_flow fab f1;
        Alcotest.(check bool) "doubled" true (f2.Flow.rate > before *. 1.8));
    tc "byte counters accumulate wire bytes per tenant" (fun () ->
        let topo = T.Builder.minimal () in
        let sim = Sim.create () in
        let fab = Fabric.create sim topo in
        let p = path topo "nic0" "dimm0.0.0" in
        let fl = Fabric.start_flow fab ~tenant:7 ~path:p ~size:Flow.Unbounded () in
        Sim.run ~until:(U.ms 1.0) sim;
        let hop = List.hd p.T.Path.hops in
        let link = hop.T.Path.link in
        let total = Fabric.link_bytes fab link.T.Link.id hop.T.Path.dir in
        let t7 = Fabric.tenant_link_bytes fab link.T.Link.id hop.T.Path.dir ~tenant:7 in
        let expected_goodput = fl.Flow.rate *. 1e-3 in
        Alcotest.(check bool) "wire >= goodput" true (total >= expected_goodput *. 0.999);
        check_close ~eps:(total /. 1e6) "tenant attribution" total t7);
    tc "utilization reflects allocation" (fun () ->
        let topo = T.Builder.minimal () in
        let sim = Sim.create () in
        let fab = Fabric.create sim topo in
        let p = path topo "nic0" "dimm0.0.0" in
        ignore (Fabric.start_flow fab ~tenant:1 ~path:p ~size:Flow.Unbounded ());
        (* the DDR channel (last hop) should be fully utilized *)
        let hop = List.nth p.T.Path.hops (List.length p.T.Path.hops - 1) in
        let u = Fabric.link_utilization fab hop.T.Path.link.T.Link.id hop.T.Path.dir in
        Alcotest.(check bool) "saturated" true (u > 0.99));
    tc "path latency rises under load" (fun () ->
        let topo = T.Builder.minimal () in
        let sim = Sim.create () in
        let fab = Fabric.create sim topo in
        let p = path topo "nic0" "dimm0.0.0" in
        let idle = Fabric.path_latency fab p in
        ignore (Fabric.start_flow fab ~tenant:1 ~path:p ~size:Flow.Unbounded ());
        let busy = Fabric.path_latency fab p in
        Alcotest.(check bool) "rises" true (busy > idle *. 1.2));
    tc "fault degrades capacity silently" (fun () ->
        let topo = T.Builder.minimal () in
        let sim = Sim.create () in
        let fab = Fabric.create sim topo in
        let p = path topo "nic0" "dimm0.0.0" in
        let fl = Fabric.start_flow fab ~tenant:1 ~path:p ~size:Flow.Unbounded () in
        let healthy_rate = fl.Flow.rate in
        let hop = List.hd p.T.Path.hops in
        Fabric.inject_fault fab hop.T.Path.link.T.Link.id
          (Fault.degrade ~capacity_factor:0.25 ());
        Alcotest.(check bool) "rate dropped" true (fl.Flow.rate < healthy_rate *. 0.5);
        Fabric.clear_fault fab hop.T.Path.link.T.Link.id;
        check_close ~eps:1e6 "recovered" healthy_rate fl.Flow.rate);
    tc "down link starves flows and loses probes" (fun () ->
        let topo = T.Builder.minimal () in
        let sim = Sim.create () in
        let fab = Fabric.create sim topo in
        let p = path topo "nic0" "dimm0.0.0" in
        let fl = Fabric.start_flow fab ~tenant:1 ~path:p ~size:Flow.Unbounded () in
        let hop = List.hd p.T.Path.hops in
        Fabric.inject_fault fab hop.T.Path.link.T.Link.id Fault.down;
        check_close "zero" 0.0 fl.Flow.rate;
        check_close "lost" 1.0 (Fabric.probe_loss_prob fab p));
    tc "llc_target flows spill to memory when thrashing" (fun () ->
        let topo = T.Builder.two_socket_server () in
        let sim = Sim.create () in
        let fab = Fabric.create sim topo in
        (* nic0 (behind the switch) and nic1 (direct root port): their
           combined DDIO write rate exceeds the I/O ways' capacity *)
        let p_nic0 = path topo "nic0" "socket0" in
        let p_nic1 = path topo "nic1" "socket0" in
        ignore (Fabric.start_flow fab ~tenant:1 ~llc_target:true ~path:p_nic0 ~size:Flow.Unbounded ());
        let h1 = Fabric.ddio_hit_rate fab ~socket:0 in
        ignore (Fabric.start_flow fab ~tenant:2 ~llc_target:true ~path:p_nic1 ~size:Flow.Unbounded ());
        let h2 = Fabric.ddio_hit_rate fab ~socket:0 in
        Alcotest.(check bool) "thrash worsens" true (h2 < h1);
        Alcotest.(check bool) "spill grows" true (Fabric.ddio_spill_rate fab ~socket:0 > 0.0));
    tc "ddio off: all llc traffic goes to memory once" (fun () ->
        let config = { T.Hostconfig.default with T.Hostconfig.ddio = T.Hostconfig.Ddio_off } in
        let topo = T.Builder.two_socket_server ~config () in
        let sim = Sim.create () in
        let fab = Fabric.create sim topo in
        let p = path topo "nic0" "socket0" in
        let fl = Fabric.start_flow fab ~tenant:1 ~llc_target:true ~path:p ~size:Flow.Unbounded () in
        check_close "no hits" 0.0 (Fabric.ddio_hit_rate fab ~socket:0);
        let spill = Fabric.ddio_spill_rate fab ~socket:0 in
        Alcotest.(check bool) "about 1x rate" true
          (spill > fl.Flow.rate *. 0.45 && spill < fl.Flow.rate *. 1.1));
    tc "small payloads waste PCIe capacity on headers" (fun () ->
        let topo = T.Builder.minimal () in
        let sim = Sim.create () in
        let fab = Fabric.create sim topo in
        let p = path topo "nic0" "dimm0.0.0" in
        let big = Fabric.start_flow fab ~tenant:1 ~payload_bytes:256 ~path:p ~size:Flow.Unbounded () in
        let big_rate = big.Flow.rate in
        Fabric.stop_flow fab big;
        let small = Fabric.start_flow fab ~tenant:1 ~payload_bytes:64 ~path:p ~size:Flow.Unbounded () in
        (* both bottlenecked by the DDR channel here, so compare PCIe wire load *)
        let hop = List.hd p.T.Path.hops in
        let wire_u = Fabric.link_utilization fab hop.T.Path.link.T.Link.id hop.T.Path.dir in
        Alcotest.(check bool) "small payload = more wire per byte" true
          (small.Flow.rate <= big_rate && wire_u > 0.0));
    tc "transfer_time estimates without committing" (fun () ->
        let topo = T.Builder.minimal () in
        let sim = Sim.create () in
        let fab = Fabric.create sim topo in
        let p = path topo "nic0" "dimm0.0.0" in
        let before = Fabric.flow_count fab in
        (match Fabric.transfer_time fab ~path:p ~bytes:1e9 with
        | Some t -> Alcotest.(check bool) "sane" true (t > 0.0 && t < U.s 1.0)
        | None -> Alcotest.fail "expected a rate");
        Alcotest.(check int) "no side effect" before (Fabric.flow_count fab));
    tc "weights shift shares between tenants" (fun () ->
        let topo = T.Builder.minimal () in
        let sim = Sim.create () in
        let fab = Fabric.create sim topo in
        let p = path topo "nic0" "dimm0.0.0" in
        let f1 = Fabric.start_flow fab ~tenant:1 ~weight:3.0 ~path:p ~size:Flow.Unbounded () in
        let f2 = Fabric.start_flow fab ~tenant:2 ~weight:1.0 ~path:p ~size:Flow.Unbounded () in
        Alcotest.(check bool) "3x" true
          (f1.Flow.rate > f2.Flow.rate *. 2.5 && f1.Flow.rate < f2.Flow.rate *. 3.5));
    tc "set_flow_limits reallocates immediately" (fun () ->
        let topo = T.Builder.minimal () in
        let sim = Sim.create () in
        let fab = Fabric.create sim topo in
        let p = path topo "nic0" "dimm0.0.0" in
        let f1 = Fabric.start_flow fab ~tenant:1 ~path:p ~size:Flow.Unbounded () in
        Fabric.set_flow_limits fab f1 ~cap:1e9 ();
        check_close ~eps:1e3 "capped now" 1e9 f1.Flow.rate);
    tc "completion callbacks see a consistent fabric" (fun () ->
        let topo = T.Builder.minimal () in
        let sim = Sim.create () in
        let fab = Fabric.create sim topo in
        let p = path topo "nic0" "dimm0.0.0" in
        let chained = ref false in
        let _ =
          Fabric.start_flow fab ~tenant:1 ~path:p ~size:(Flow.Bytes 1e6)
            ~on_complete:(fun _ ->
              chained := true;
              ignore (Fabric.start_flow fab ~tenant:1 ~path:p ~size:(Flow.Bytes 1e6) ()))
            ()
        in
        Sim.run sim;
        Alcotest.(check bool) "chained" true !chained;
        Alcotest.(check int) "drained" 0 (Fabric.flow_count fab));
    tc "the DDIO spill fixed point is stable across reallocations" (fun () ->
        (* thrashing configuration: two LLC writers; rates must not
           oscillate between consecutive reallocations *)
        let topo = T.Builder.two_socket_server () in
        let sim = Sim.create () in
        let fab = Fabric.create sim topo in
        let p0 = path topo "nic0" "socket0" and p1 = path topo "nic1" "socket0" in
        let f0 = Fabric.start_flow fab ~tenant:1 ~llc_target:true ~path:p0 ~size:Flow.Unbounded () in
        let f1 = Fabric.start_flow fab ~tenant:2 ~llc_target:true ~path:p1 ~size:Flow.Unbounded () in
        let r0 = f0.Flow.rate and r1 = f1.Flow.rate in
        let h = Fabric.ddio_hit_rate fab ~socket:0 in
        (* a no-op limit change forces a fresh reallocation *)
        Fabric.set_flow_limits fab f0 ~weight:1.0 ();
        Fabric.set_flow_limits fab f0 ~weight:1.0 ();
        Alcotest.(check bool) "rates stable" true
          (Float.abs (f0.Flow.rate -. r0) < 0.05 *. r0
          && Float.abs (f1.Flow.rate -. r1) < 0.05 *. r1);
        Alcotest.(check bool) "hit stable" true
          (Float.abs (Fabric.ddio_hit_rate fab ~socket:0 -. h) < 0.05));
    tc "probe class traffic is accounted separately" (fun () ->
        let topo = T.Builder.minimal () in
        let sim = Sim.create () in
        let fab = Fabric.create sim topo in
        let p = path topo "nic0" "dimm0.0.0" in
        ignore
          (Fabric.start_flow fab ~tenant:0 ~cls:Flow.Probe ~cap:1e8 ~path:p ~size:Flow.Unbounded ());
        Sim.run ~until:(U.ms 1.0) sim;
        let hop = List.hd p.T.Path.hops in
        let probe_bytes =
          Fabric.cls_link_bytes fab hop.T.Path.link.T.Link.id hop.T.Path.dir ~cls:Flow.Probe
        in
        let payload_bytes =
          Fabric.cls_link_bytes fab hop.T.Path.link.T.Link.id hop.T.Path.dir ~cls:Flow.Payload
        in
        Alcotest.(check bool) "probe counted" true (probe_bytes > 0.0);
        check_close "no payload" 0.0 payload_bytes);
  ]

(* Conservation property: random flow sets never oversubscribe links. *)
let fabric_properties =
  let gen =
    QCheck.make
      ~print:(fun specs ->
        String.concat ";"
          (List.map (fun (a, b, cap) -> Printf.sprintf "%d->%d@%.0f" a b cap) specs))
      QCheck.Gen.(
        list_size (int_range 1 10)
          (let* a = int_range 0 20 in
           let* b = int_range 0 20 in
           let* cap = float_range 1e8 1e11 in
           return (a, b, cap)))
  in
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"random flows never oversubscribe any link" ~count:100 gen
         (fun specs ->
           let topo = T.Builder.two_socket_server () in
           let sim = Sim.create () in
           let fab = Fabric.create sim topo in
           let n = T.Topology.device_count topo in
           List.iter
             (fun (a, b, cap) ->
               let a = a mod n and b = b mod n in
               if a <> b then
                 match T.Routing.shortest_path topo a b with
                 | Some p when p.T.Path.hops <> [] ->
                   ignore (Fabric.start_flow fab ~tenant:1 ~cap ~path:p ~size:Flow.Unbounded ())
                 | Some _ | None -> ())
             specs;
           List.for_all
             (fun (l : T.Link.t) ->
               List.for_all
                 (fun dir ->
                   let rate = Fabric.link_rate fab l.T.Link.id dir in
                   let cap = Fabric.effective_capacity fab l.T.Link.id dir in
                   rate <= cap *. 1.001 +. 1.0)
                 [ T.Link.Fwd; T.Link.Rev ])
             (T.Topology.links topo)));
  ]

(* {1 Always-on latency sketches} *)

let sketch_plane_tests =
  let mk enable =
    let topo = T.Builder.two_socket_server () in
    let sim = Sim.create () in
    let fab = Fabric.create sim topo in
    if enable then Fabric.enable_latency_sketches fab;
    fab
  in
  (* identical churn on each fabric: an unbounded background flow plus
     a stream of bounded requests whose completions hit the flow sketch *)
  let drive fab =
    let topo = Fabric.topology fab in
    let p = path topo "ext" "socket0" in
    ignore (Fabric.start_flow fab ~tenant:1 ~path:p ~size:Flow.Unbounded ());
    for i = 1 to 10 do
      ignore (Fabric.start_flow fab ~tenant:2 ~demand:1e9 ~path:p ~size:(Flow.Bytes 50_000.0) ());
      Sim.run ~until:(float_of_int i *. 100_000.0) (Fabric.sim fab)
    done;
    ( Fabric.reallocations fab,
      List.map (fun (f : Flow.t) -> Int64.bits_of_float f.Flow.rate) (Fabric.active_flows fab) )
  in
  [
    tc "dormant plane reads None" (fun () ->
        let fab = mk false in
        Alcotest.(check bool) "disabled" false (Fabric.latency_sketches_enabled fab);
        Alcotest.(check bool) "no flow sketch" true (Fabric.flow_latency_sketch fab = None);
        Alcotest.(check bool) "no link sketch" true
          (Fabric.link_latency_sketch fab 0 T.Link.Fwd = None));
    tc "enabled plane observes without steering" (fun () ->
        let bare = mk false and sketched = mk true in
        let sig0 = drive bare and sig1 = drive sketched in
        Alcotest.(check bool) "reallocations and rates bit-identical" true (sig0 = sig1);
        (match Fabric.flow_latency_sketch sketched with
        | Some sk ->
          Alcotest.(check bool) "completions observed" true (Ihnet_util.Sketch.count sk > 0)
        | None -> Alcotest.fail "flow sketch missing");
        let p = path (Fabric.topology sketched) "ext" "socket0" in
        let h = List.hd p.T.Path.hops in
        match Fabric.link_latency_sketch sketched h.T.Path.link.T.Link.id h.T.Path.dir with
        | Some sk -> Alcotest.(check bool) "epochs observed" true (Ihnet_util.Sketch.count sk > 0)
        | None -> Alcotest.fail "link sketch missing");
    tc "enable is idempotent" (fun () ->
        let fab = mk true in
        ignore (drive fab);
        let before =
          match Fabric.flow_latency_sketch fab with
          | Some sk -> Ihnet_util.Sketch.count sk
          | None -> Alcotest.fail "flow sketch missing"
        in
        Fabric.enable_latency_sketches fab;
        (match Fabric.flow_latency_sketch fab with
        | Some sk -> Alcotest.(check int) "samples kept" before (Ihnet_util.Sketch.count sk)
        | None -> Alcotest.fail "flow sketch lost");
        Alcotest.(check bool) "still enabled" true (Fabric.latency_sketches_enabled fab));
  ]

let suites =
  [
    ("engine.sim", sim_tests);
    ("engine.fairshare", fairshare_tests @ fairshare_properties);
    ("engine.latency", latency_tests);
    ("engine.iommu", iommu_tests);
    ("engine.cache", cache_tests);
    ("engine.fabric", fabric_tests @ fabric_properties);
    ("engine.sketches", sketch_plane_tests);
  ]
