#!/bin/sh
# Cram-style smoke tests for the ihnetctl CLI: pin exit codes and
# first-line output shapes so flag renames and format drift fail
# loudly in CI instead of silently breaking operator scripts.
set -u
CTL="$1"
DAEMON="$2"
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT
fails=0

# expect NAME WANT_EXIT FIRST_LINE_REGEX CMD...: run CMD, check the
# exit code and match the first line of combined output.
expect() {
  name="$1" want="$2" regex="$3"
  shift 3
  out=$("$@" 2>&1)
  got=$?
  first=$(printf '%s\n' "$out" | head -n 1)
  if [ "$got" -ne "$want" ]; then
    echo "FAIL $name: exit $got, wanted $want (first line: $first)"
    fails=$((fails + 1))
  elif ! printf '%s\n' "$first" | grep -Eq "$regex"; then
    echo "FAIL $name: first line '$first' does not match /$regex/"
    fails=$((fails + 1))
  else
    echo "ok   $name"
  fi
}

# expect_any NAME WANT_EXIT REGEX CMD...: like expect, but the regex
# may match any line (for shapes that follow a header).
expect_any() {
  name="$1" want="$2" regex="$3"
  shift 3
  out=$("$@" 2>&1)
  got=$?
  if [ "$got" -ne "$want" ]; then
    echo "FAIL $name: exit $got, wanted $want"
    fails=$((fails + 1))
  elif ! printf '%s\n' "$out" | grep -Eq "$regex"; then
    echo "FAIL $name: no line matches /$regex/"
    fails=$((fails + 1))
  else
    echo "ok   $name"
  fi
}

expect scan-summary 0 \
  '^scan: epoch [0-9]+, [0-9]+ registers, digest 0x[0-9a-f]{16}$' \
  "$CTL" scan --load --ms 2 -o "$tmp/a.scan.json"
expect scan-diff-same 0 \
  '^scan diff: identical \([0-9]+ registers compared\)$' \
  "$CTL" scan --diff "$tmp/a.scan.json" "$tmp/a.scan.json"
"$CTL" scan --load --ms 3 -o "$tmp/b.scan.json" >/dev/null 2>&1
expect scan-diff-differ 1 \
  '^scan diff: [^ ]+: .+ vs .+ \([0-9]+ register\(s\) differ\)$' \
  "$CTL" scan --diff "$tmp/a.scan.json" "$tmp/b.scan.json"
expect scan-diff-missing-args 1 \
  '^ihnetctl: scan --diff needs two snapshot files' \
  "$CTL" scan --diff
expect scan-step 0 \
  '^scan: epoch [0-9]+, [0-9]+ registers, digest 0x[0-9a-f]{16}$' \
  "$CTL" scan --load --ms 1 --step 2
expect_any scan-step-lines 0 \
  '^step 1: epoch [0-9]+, digest 0x[0-9a-f]{16}$' \
  "$CTL" scan --load --ms 1 --step 2
expect latency 0 \
  '^flow end-to-end latency: ' \
  "$CTL" latency --load --ms 2
"$CTL" record -s e5 -o "$tmp/e5.trace.jsonl" >/dev/null 2>&1
expect faults 0 \
  '^trace .*: [0-9]+ link fault\(s\), [0-9]+ sensor fault\(s\) active at end$' \
  "$CTL" faults "$tmp/e5.trace.jsonl"

expect fleet 0 \
  '^fleet: 3 host\(s\), 4 tenant\(s\), seed 42$' \
  "$CTL" fleet --hosts 3 --tenants 4 --rounds 24
expect_any fleet-crash-failover 0 \
  '^  migrate tenant [0-9]+ host1 -> host[0-9]+ \(host-down\)$' \
  "$CTL" fleet --hosts 3 --tenants 4 --rounds 24 --crash host1 --decisions
expect_any fleet-reconcile 0 \
  '^  reconcile host0: revoke stray tenant\(s\) [0-9]+' \
  "$CTL" fleet --hosts 3 --tenants 3 --rounds 24 --partition host0 --decisions
expect_any fleet-digest 0 \
  '^fleet digest 0x[0-9a-f]{16} decisions 0x[0-9a-f]{16}$' \
  "$CTL" fleet --hosts 2 --tenants 2 --rounds 12
expect_any fleet-unknown-host 1 \
  '^ihnetctl: Fleet.Controller: unknown host "nope"$' \
  "$CTL" fleet --hosts 2 --rounds 12 --crash nope

cat >"$tmp/base.json" <<'EOF'
{ "subjects": { "probe": 100.0 } }
EOF
cat >"$tmp/within.json" <<'EOF'
{ "subjects": { "probe": 95.0 } }
EOF
cat >"$tmp/slow.json" <<'EOF'
{ "subjects": { "probe": 10.0 } }
EOF
expect bench-compare-ok 0 \
  '^subject +baseline +current +delta$' \
  "$CTL" bench "$tmp/within.json" --compare "$tmp/base.json" --tolerance 30
expect_any bench-compare-regression 1 \
  'regressed more than 30% below' \
  "$CTL" bench "$tmp/slow.json" --compare "$tmp/base.json" --tolerance 30

# Daemon smoke: start ihnetd, drive it over the socket (happy paths,
# typed wire errors with their documented exit codes), shut it down
# cleanly, then replay the recorded session.
dsock="$tmp/d.sock"
dtrace="$tmp/d.trace.jsonl"
"$DAEMON" --socket "$dsock" --trace "$dtrace" --seed 7 2>"$tmp/d.err" &
dpid=$!
i=0
while [ ! -S "$dsock" ] && [ "$i" -lt 100 ]; do
  sleep 0.05
  i=$((i + 1))
done
if [ ! -S "$dsock" ]; then
  echo "FAIL daemon-start: socket never appeared ($(cat "$tmp/d.err"))"
  fails=$((fails + 1))
else
  expect daemon-topo 0 \
    '^two-socket-server: 34 devices' \
    "$CTL" topo --connect "$dsock"
  expect daemon-flow 0 \
    '^started flow [0-9]+$' \
    "$CTL" flow ext socket0 --gbps 2 --connect "$dsock"
  expect daemon-submit 0 \
    '^tenant 1: [0-9]+ placement\(s\)$' \
    "$CTL" submit -t 1 --pipe nic0:socket0:2 --connect "$dsock"
  expect daemon-stats 0 \
    '^now .*aggregate$' \
    "$CTL" stats --connect "$dsock"
  expect daemon-capacity-exhausted 16 \
    '^ihnetctl: tenant 9: no pathway can hold ' \
    "$CTL" submit -t 9 --pipe nic0:socket0:5000 --connect "$dsock"
  expect daemon-wrong-mode 4 \
    '^ihnetctl: daemon is in host mode; command unavailable$' \
    "$CTL" fleetctl --status --connect "$dsock"
  expect daemon-shutdown 0 \
    '^bye$' \
    "$CTL" shutdown --connect "$dsock"
  wait "$dpid"
  dstatus=$?
  if [ "$dstatus" -ne 0 ]; then
    echo "FAIL daemon-exit: ihnetd exited $dstatus ($(cat "$tmp/d.err"))"
    fails=$((fails + 1))
  else
    echo "ok   daemon-exit"
  fi
  expect daemon-replay 0 \
    '^replayed [0-9]+ command\(s\): ' \
    "$CTL" replay "$dtrace"
  expect_any daemon-replay-clean 0 \
    '^no divergence$' \
    "$CTL" replay "$dtrace"
fi

if [ "$fails" -ne 0 ]; then
  echo "$fails CLI smoke(s) failed"
  exit 1
fi
echo "all CLI smokes passed"
