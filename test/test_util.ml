(* Unit and property tests for ihnet_util. *)

open Ihnet_util

let check_float = Alcotest.(check (float 1e-9))
let check_close ?(eps = 1e-6) msg expected actual = Alcotest.(check (float eps)) msg expected actual
let tc name f = Alcotest.test_case name `Quick f
let prop name ?(count = 200) gen f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count gen f)

(* {1 Units} *)

let units_tests =
  [
    tc "us/ms/s conversions" (fun () ->
        check_float "us" 1_000.0 (Units.us 1.0);
        check_float "ms" 1_000_000.0 (Units.ms 1.0);
        check_float "s" 1e9 (Units.s 1.0);
        check_float "roundtrip" 2.5 (Units.ns_to_us (Units.us 2.5)));
    tc "gbps is bytes per second" (fun () ->
        check_float "200 Gbps" 25e9 (Units.gbps 200.0);
        check_close "to_gbps" 200.0 (Units.to_gbps (Units.gbps 200.0)));
    tc "binary sizes" (fun () ->
        check_float "1 GiB" 1073741824.0 (Units.gib 1.0);
        check_float "1 KiB" 1024.0 (Units.kib 1.0));
    tc "pp_rate picks sane unit" (fun () ->
        let s = Format.asprintf "%a" Units.pp_rate (Units.gbytes_per_s 25.0) in
        Alcotest.(check string) "GB/s" "25.0 GB/s" s);
    tc "pp_time picks sane unit" (fun () ->
        let s = Format.asprintf "%a" Units.pp_time 1500.0 in
        Alcotest.(check string) "us" "1.50 us" s);
  ]

(* {1 Rng} *)

let rng_tests =
  [
    tc "determinism: equal seeds, equal streams" (fun () ->
        let a = Rng.create 7 and b = Rng.create 7 in
        for _ = 1 to 100 do
          Alcotest.(check int64) "same" (Rng.bits64 a) (Rng.bits64 b)
        done);
    tc "different seeds diverge" (fun () ->
        let a = Rng.create 1 and b = Rng.create 2 in
        Alcotest.(check bool) "differ" true (Rng.bits64 a <> Rng.bits64 b));
    tc "split streams are independent of later parent draws" (fun () ->
        let parent1 = Rng.create 5 in
        let child1 = Rng.split parent1 in
        let first_child_draws = List.init 10 (fun _ -> Rng.bits64 child1) in
        let parent2 = Rng.create 5 in
        let child2 = Rng.split parent2 in
        (* drawing from parent2 must not affect child2's stream *)
        ignore (Rng.bits64 parent2);
        let second_child_draws = List.init 10 (fun _ -> Rng.bits64 child2) in
        Alcotest.(check (list int64)) "same" first_child_draws second_child_draws);
    tc "int bounds" (fun () ->
        let r = Rng.create 3 in
        for _ = 1 to 1000 do
          let v = Rng.int r 17 in
          Alcotest.(check bool) "in range" true (v >= 0 && v < 17)
        done);
    tc "uniform respects bounds" (fun () ->
        let r = Rng.create 3 in
        for _ = 1 to 1000 do
          let v = Rng.uniform r 5.0 9.0 in
          Alcotest.(check bool) "in range" true (v >= 5.0 && v < 9.0)
        done);
    tc "exponential mean is approximately right" (fun () ->
        let r = Rng.create 11 in
        let n = 20_000 in
        let sum = ref 0.0 in
        for _ = 1 to n do
          sum := !sum +. Rng.exponential r 3.0
        done;
        let m = !sum /. float_of_int n in
        Alcotest.(check bool) "within 5%" true (Float.abs (m -. 3.0) < 0.15));
    tc "pareto respects x_min" (fun () ->
        let r = Rng.create 13 in
        for _ = 1 to 1000 do
          Alcotest.(check bool) "geq x_min" true (Rng.pareto r 1.5 2.0 >= 2.0)
        done);
    tc "gaussian mean/stddev roughly right" (fun () ->
        let r = Rng.create 17 in
        let n = 20_000 in
        let stats = Stats.Online.create () in
        for _ = 1 to n do
          Stats.Online.add stats (Rng.gaussian r 10.0 2.0)
        done;
        Alcotest.(check bool) "mean" true (Float.abs (Stats.Online.mean stats -. 10.0) < 0.1);
        Alcotest.(check bool) "stddev" true (Float.abs (Stats.Online.stddev stats -. 2.0) < 0.1));
    tc "zipf ranks in range and skewed" (fun () ->
        let r = Rng.create 19 in
        let n = 10_000 in
        let count1 = ref 0 in
        for _ = 1 to n do
          let k = Rng.zipf r 100 1.2 in
          Alcotest.(check bool) "range" true (k >= 1 && k <= 100);
          if k = 1 then incr count1
        done;
        (* rank 1 should be much more popular than uniform (1%) *)
        Alcotest.(check bool) "skew" true (!count1 > n / 20));
    tc "shuffle permutes" (fun () ->
        let r = Rng.create 23 in
        let a = Array.init 50 Fun.id in
        Rng.shuffle r a;
        let sorted = Array.copy a in
        Array.sort compare sorted;
        Alcotest.(check (array int)) "same elements" (Array.init 50 Fun.id) sorted);
    prop "float t x stays in [0,x)" QCheck.(pair small_int (float_range 0.1 1e6))
      (fun (seed, x) ->
        let r = Rng.create seed in
        let v = Rng.float r x in
        v >= 0.0 && v < x);
  ]

(* {1 Stats} *)

let stats_tests =
  [
    tc "summarize basic" (fun () ->
        let s = Stats.summarize [| 1.0; 2.0; 3.0; 4.0; 5.0 |] in
        check_float "mean" 3.0 s.Stats.mean;
        check_float "min" 1.0 s.Stats.min;
        check_float "max" 5.0 s.Stats.max;
        check_float "p50" 3.0 s.Stats.p50;
        Alcotest.(check int) "count" 5 s.Stats.count);
    tc "percentile interpolates" (fun () ->
        let xs = [| 0.0; 10.0 |] in
        check_float "p50" 5.0 (Stats.percentile xs 0.5);
        check_float "p0" 0.0 (Stats.percentile xs 0.0);
        check_float "p100" 10.0 (Stats.percentile xs 1.0));
    tc "empty summary is nan" (fun () ->
        let s = Stats.summarize [||] in
        Alcotest.(check bool) "nan" true (Float.is_nan s.Stats.mean));
    tc "online matches batch" (fun () ->
        let xs = [| 3.0; 1.0; 4.0; 1.0; 5.0; 9.0; 2.0; 6.0 |] in
        let o = Stats.Online.create () in
        Array.iter (Stats.Online.add o) xs;
        check_close "mean" (Stats.mean xs) (Stats.Online.mean o);
        check_close "stddev" (Stats.stddev xs) (Stats.Online.stddev o));
    tc "ewma tracks level shift" (fun () ->
        let e = Stats.Ewma.create ~alpha:0.3 in
        for _ = 1 to 50 do
          Stats.Ewma.add e 10.0
        done;
        check_close "settled" 10.0 (Stats.Ewma.value e);
        (* a 5-sigma jump has large deviation *)
        for _ = 1 to 50 do
          Stats.Ewma.add e (10.0 +. Rng.gaussian (Rng.create 1) 0.0 0.1)
        done;
        Alcotest.(check bool) "deviation large on jump" true (Stats.Ewma.deviation e 20.0 > 3.0));
    tc "cusum fires on persistent shift, not noise" (fun () ->
        let c = Stats.Cusum.create ~threshold:5.0 () in
        let r = Rng.create 29 in
        let fired = ref false in
        (* in-control noise *)
        for _ = 1 to 200 do
          match Stats.Cusum.add c ~expected:0.0 ~sigma:1.0 (Rng.gaussian r 0.0 1.0) with
          | `Alarm _ -> fired := true
          | `Ok -> ()
        done;
        Alcotest.(check bool) "quiet in control" false !fired;
        (* persistent 2-sigma shift *)
        let alarm = ref false in
        for _ = 1 to 50 do
          match Stats.Cusum.add c ~expected:0.0 ~sigma:1.0 (2.0 +. Rng.gaussian r 0.0 0.3) with
          | `Alarm `Up -> alarm := true
          | `Alarm `Down | `Ok -> ()
        done;
        Alcotest.(check bool) "fires on shift" true !alarm);
    tc "cusum detects downward shift" (fun () ->
        let c = Stats.Cusum.create ~threshold:4.0 () in
        let alarm = ref false in
        for _ = 1 to 50 do
          match Stats.Cusum.add c ~expected:10.0 ~sigma:1.0 7.0 with
          | `Alarm `Down -> alarm := true
          | `Alarm `Up | `Ok -> ()
        done;
        Alcotest.(check bool) "down alarm" true !alarm);
    prop "percentile is monotone in q" QCheck.(list_of_size Gen.(int_range 2 50) (float_bound_exclusive 1000.0))
      (fun xs ->
        let a = Array.of_list xs in
        Array.sort compare a;
        Stats.percentile a 0.25 <= Stats.percentile a 0.75);
  ]

(* {1 Histogram} *)

let histogram_tests =
  [
    tc "mean exact, percentile approximate" (fun () ->
        let h = Histogram.create () in
        List.iter (Histogram.add h) [ 100.0; 200.0; 300.0; 400.0 ];
        check_close "mean" 250.0 (Histogram.mean h);
        Alcotest.(check int) "count" 4 (Histogram.count h);
        let p50 = Histogram.percentile h 0.5 in
        Alcotest.(check bool) "p50 near 200" true (p50 >= 180.0 && p50 <= 320.0));
    tc "bounded relative error" (fun () ->
        let h = Histogram.create ~sub:64 () in
        let v = 12345.678 in
        Histogram.add h v;
        let got = Histogram.percentile h 0.5 in
        Alcotest.(check bool) "3% error" true (Float.abs (got -. v) /. v < 0.03));
    tc "ignores negatives and nan" (fun () ->
        let h = Histogram.create () in
        Histogram.add h (-1.0);
        Histogram.add h Float.nan;
        Alcotest.(check int) "empty" 0 (Histogram.count h));
    tc "merge combines counts" (fun () ->
        let a = Histogram.create () and b = Histogram.create () in
        Histogram.add a 10.0;
        Histogram.add b 20.0;
        Histogram.merge a b;
        Alcotest.(check int) "count" 2 (Histogram.count a);
        check_close "max" 20.0 (Histogram.max_value a));
    tc "clear resets" (fun () ->
        let h = Histogram.create () in
        Histogram.add h 5.0;
        Histogram.clear h;
        Alcotest.(check int) "count" 0 (Histogram.count h);
        Alcotest.(check bool) "mean nan" true (Float.is_nan (Histogram.mean h)));
    prop "p99 >= p50 >= min" QCheck.(list_of_size Gen.(int_range 1 100) (float_range 0.001 1e6))
      (fun xs ->
        let h = Histogram.create () in
        List.iter (Histogram.add h) xs;
        let p50 = Histogram.percentile h 0.5 and p99 = Histogram.percentile h 0.99 in
        p99 >= p50 *. 0.999);
    tc "infinity is ignored, not binned" (fun () ->
        (* regression: add used to compute a bucket for infinity and
           blow up the octave index *)
        let h = Histogram.create () in
        Histogram.add h infinity;
        Histogram.add h neg_infinity;
        Alcotest.(check int) "empty" 0 (Histogram.count h);
        Histogram.add h 1.0;
        Histogram.add h infinity;
        Alcotest.(check int) "finite only" 1 (Histogram.count h);
        Alcotest.(check (float 1e-9)) "max unpolluted" 1.0 (Histogram.max_value h));
    tc "octave boundary: pred 8.0 stays in its octave" (fun () ->
        (* regression: floor (log2 v) rounds Float.pred 8.0 UP to 3.0
           in doubles, mis-binning it into the [8,16) octave; frexp is
           exact. The estimate must stay within the value's true
           bucket, hence strictly below 8. *)
        let v = Float.pred 8.0 in
        let h = Histogram.create () in
        Histogram.add h v;
        let got = Histogram.percentile h 0.5 in
        Alcotest.(check bool) "within [4,8)" true (got >= 4.0 && got < 8.0));
    tc "percentile never leaves the observed range" (fun () ->
        (* regression: a lone 513 used to report its bucket midpoint
           520 — above every recorded value *)
        let h = Histogram.create () in
        Histogram.add h 513.0;
        Alcotest.(check (float 1e-9)) "clamped to max" 513.0 (Histogram.percentile h 0.99));
    prop "percentile bounded by min/max"
      QCheck.(list_of_size Gen.(int_range 1 100) (float_range 0.001 1e6))
      (fun xs ->
        let h = Histogram.create () in
        List.iter (Histogram.add h) xs;
        let p = Histogram.percentile h 0.99 in
        p >= Histogram.min_value h && p <= Histogram.max_value h);
  ]

(* {1 Heap} *)

let heap_tests =
  [
    tc "pops in priority order" (fun () ->
        let h = Heap.create () in
        List.iter (fun p -> Heap.push h p (int_of_float p)) [ 5.0; 1.0; 3.0; 2.0; 4.0 ];
        let out = ref [] in
        let rec drain () =
          match Heap.pop h with
          | Some (_, v) ->
            out := v :: !out;
            drain ()
          | None -> ()
        in
        drain ();
        Alcotest.(check (list int)) "sorted" [ 1; 2; 3; 4; 5 ] (List.rev !out));
    tc "fifo among equal priorities" (fun () ->
        let h = Heap.create () in
        List.iter (fun v -> Heap.push h 1.0 v) [ "a"; "b"; "c" ];
        let next () = match Heap.pop h with Some (_, v) -> v | None -> "?" in
        let x1 = next () in
        let x2 = next () in
        let x3 = next () in
        Alcotest.(check (list string)) "fifo" [ "a"; "b"; "c" ] [ x1; x2; x3 ]);
    tc "peek does not remove" (fun () ->
        let h = Heap.create () in
        Heap.push h 2.0 "x";
        Alcotest.(check bool) "peek" true (Heap.peek h <> None);
        Alcotest.(check int) "size" 1 (Heap.size h));
    tc "empty pops None" (fun () ->
        let h : int Heap.t = Heap.create () in
        Alcotest.(check bool) "none" true (Heap.pop h = None));
    prop "heap sort equals List.sort" QCheck.(list (float_range 0.0 1000.0))
      (fun xs ->
        let h = Heap.create () in
        List.iter (fun x -> Heap.push h x x) xs;
        let drained = List.map fst (Heap.to_list h) in
        drained = List.sort compare xs);
  ]

(* {1 Ring buffer} *)

let ring_tests =
  [
    tc "keeps the newest when full" (fun () ->
        let r = Ring_buffer.create 3 in
        List.iter (Ring_buffer.push r) [ 1; 2; 3; 4; 5 ];
        Alcotest.(check (list int)) "window" [ 3; 4; 5 ] (Ring_buffer.to_list r);
        Alcotest.(check int) "dropped" 2 (Ring_buffer.dropped r));
    tc "oldest and newest" (fun () ->
        let r = Ring_buffer.create 4 in
        List.iter (Ring_buffer.push r) [ 10; 20; 30 ];
        Alcotest.(check (option int)) "oldest" (Some 10) (Ring_buffer.oldest r);
        Alcotest.(check (option int)) "newest" (Some 30) (Ring_buffer.newest r));
    tc "get bounds" (fun () ->
        let r = Ring_buffer.create 2 in
        Ring_buffer.push r 1;
        Alcotest.check_raises "oob" (Invalid_argument "Ring_buffer.get") (fun () ->
            ignore (Ring_buffer.get r 1)));
    tc "clear" (fun () ->
        let r = Ring_buffer.create 2 in
        Ring_buffer.push r 1;
        Ring_buffer.clear r;
        Alcotest.(check int) "len" 0 (Ring_buffer.length r));
    prop "length never exceeds capacity" QCheck.(pair (int_range 1 20) (list small_int))
      (fun (cap, xs) ->
        let r = Ring_buffer.create cap in
        List.iter (Ring_buffer.push r) xs;
        Ring_buffer.length r <= cap
        && Ring_buffer.length r = min cap (List.length xs));
    prop "to_list is the newest-cap suffix of the pushes"
      QCheck.(pair (int_range 1 16) (list small_int))
      (fun (cap, xs) ->
        let r = Ring_buffer.create cap in
        List.iter (Ring_buffer.push r) xs;
        let n = List.length xs in
        let expect = List.filteri (fun i _ -> i >= n - cap) xs in
        Ring_buffer.to_list r = expect
        && Ring_buffer.dropped r = max 0 (n - cap)
        && Ring_buffer.oldest r = (match expect with [] -> None | x :: _ -> Some x)
        && Ring_buffer.newest r
           = (match List.rev expect with [] -> None | x :: _ -> Some x));
    prop "get, iter and fold agree with to_list"
      QCheck.(pair (int_range 1 16) (list small_int))
      (fun (cap, xs) ->
        let r = Ring_buffer.create cap in
        List.iter (Ring_buffer.push r) xs;
        let window = Ring_buffer.to_list r in
        let via_get = List.init (Ring_buffer.length r) (Ring_buffer.get r) in
        let via_iter = ref [] in
        Ring_buffer.iter (fun x -> via_iter := x :: !via_iter) r;
        via_get = window
        && List.rev !via_iter = window
        && Ring_buffer.fold (fun acc x -> x :: acc) [] r = !via_iter);
  ]

(* {1 Table} *)

let table_tests =
  [
    tc "renders header and rows" (fun () ->
        let contains s sub =
          let n = String.length s and m = String.length sub in
          let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
          go 0
        in
        let t = Table.create ~title:"demo" ~columns:[ "alpha"; "beta" ] in
        Table.add_row t [ "1"; "2" ];
        let s = Table.render t in
        Alcotest.(check bool) "has title" true (contains s "demo");
        Alcotest.(check bool) "has header" true (contains s "alpha");
        Alcotest.(check bool) "contains row" true (contains s "1"));
    tc "pads short rows" (fun () ->
        let t = Table.create ~title:"t" ~columns:[ "a"; "b"; "c" ] in
        Table.add_row t [ "x" ];
        ignore (Table.render t));
    tc "rejects long rows" (fun () ->
        let t = Table.create ~title:"t" ~columns:[ "a" ] in
        Alcotest.check_raises "too many" (Invalid_argument "Table.add_row: too many cells")
          (fun () -> Table.add_row t [ "1"; "2" ]));
    tc "cell_f formats" (fun () ->
        Alcotest.(check string) "nan" "-" (Table.cell_f Float.nan);
        Alcotest.(check string) "big" "1235" (Table.cell_f 1234.6));
    tc "to_csv quotes awkward cells" (fun () ->
        let t = Table.create ~title:"t" ~columns:[ "a"; "b" ] in
        Table.add_row t [ "plain"; "has,comma" ];
        Table.add_row t [ "has\"quote"; "x" ];
        let lines = String.split_on_char '\n' (String.trim (Table.to_csv t)) in
        Alcotest.(check string) "header" "a,b" (List.hd lines);
        Alcotest.(check string) "comma quoted" "plain,\"has,comma\"" (List.nth lines 1);
        Alcotest.(check string) "quote doubled" "\"has\"\"quote\",x" (List.nth lines 2));
    tc "add_rowf splits on pipes" (fun () ->
        let t = Table.create ~title:"t" ~columns:[ "a"; "b"; "c" ] in
        Table.add_rowf t "%d|%s|%.1f" 1 "two" 3.0;
        let lines = String.split_on_char '\n' (String.trim (Table.to_csv t)) in
        Alcotest.(check string) "row" "1,two,3.0" (List.nth lines 1));
    tc "title accessor" (fun () ->
        let t = Table.create ~title:"demo" ~columns:[ "a" ] in
        Alcotest.(check string) "title" "demo" (Table.title t));
    prop "csv has one line per row plus a header"
      QCheck.(list_of_size Gen.(int_range 0 20) (pair small_nat small_nat))
      (fun rows ->
        let t = Table.create ~title:"p" ~columns:[ "x"; "y" ] in
        List.iter (fun (x, y) -> Table.add_row t [ string_of_int x; string_of_int y ]) rows;
        let lines = String.split_on_char '\n' (String.trim (Table.to_csv t)) in
        List.length lines = 1 + List.length rows);
    prop "render contains every cell" QCheck.(list_of_size Gen.(int_range 1 10) small_nat)
      (fun xs ->
        let t = Table.create ~title:"p" ~columns:[ "v" ] in
        List.iter (fun x -> Table.add_row t [ string_of_int x ]) xs;
        let s = Table.render t in
        let contains sub =
          let n = String.length s and m = String.length sub in
          let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
          go 0
        in
        List.for_all (fun x -> contains (string_of_int x)) xs);
  ]

(* {1 Vec} *)

let vec_tests =
  [
    tc "fresh vec is empty" (fun () ->
        let v : int Vec.t = Vec.create () in
        Alcotest.(check int) "len" 0 (Vec.length v);
        Alcotest.(check bool) "empty" true (Vec.is_empty v));
    tc "push then get in order" (fun () ->
        let v = Vec.create () in
        List.iter (Vec.push v) [ 10; 20; 30 ];
        Alcotest.(check int) "len" 3 (Vec.length v);
        Alcotest.(check bool) "not empty" false (Vec.is_empty v);
        Alcotest.(check int) "get 0" 10 (Vec.get v 0);
        Alcotest.(check int) "get 2" 30 (Vec.get v 2));
    tc "get out of bounds raises" (fun () ->
        let v = Vec.create () in
        Vec.push v 1;
        let raises i =
          try
            ignore (Vec.get v i);
            false
          with Invalid_argument _ -> true
        in
        Alcotest.(check bool) "past end" true (raises 1);
        Alcotest.(check bool) "negative" true (raises (-1)));
    tc "clear resets length but the vec stays usable" (fun () ->
        let v = Vec.create () in
        for i = 1 to 100 do
          Vec.push v i
        done;
        Vec.clear v;
        Alcotest.(check int) "len" 0 (Vec.length v);
        Alcotest.(check bool) "empty" true (Vec.is_empty v);
        Vec.push v 7;
        Alcotest.(check int) "len" 1 (Vec.length v);
        Alcotest.(check int) "get" 7 (Vec.get v 0));
    tc "iteri sees indices in order" (fun () ->
        let v = Vec.create () in
        List.iter (Vec.push v) [ "a"; "b"; "c" ];
        let seen = ref [] in
        Vec.iteri (fun i x -> seen := (i, x) :: !seen) v;
        Alcotest.(check (list (pair int string)))
          "order"
          [ (0, "a"); (1, "b"); (2, "c") ]
          (List.rev !seen));
    tc "exists" (fun () ->
        let v = Vec.create () in
        List.iter (Vec.push v) [ 1; 3; 5 ];
        Alcotest.(check bool) "yes" true (Vec.exists (fun x -> x = 3) v);
        Alcotest.(check bool) "no" false (Vec.exists (fun x -> x = 4) v));
    tc "to_array is a fresh copy" (fun () ->
        let v = Vec.create () in
        Vec.push v 1;
        let a = Vec.to_array v in
        a.(0) <- 99;
        Alcotest.(check int) "unaffected" 1 (Vec.get v 0));
    prop "to_array agrees with the pushed list" QCheck.(list small_int) (fun xs ->
        let v = Vec.create () in
        List.iter (Vec.push v) xs;
        Array.to_list (Vec.to_array v) = xs && Vec.length v = List.length xs);
    prop "push after clear equals fresh" QCheck.(pair (list small_int) (list small_int))
      (fun (xs, ys) ->
        let v = Vec.create () in
        List.iter (Vec.push v) xs;
        Vec.clear v;
        List.iter (Vec.push v) ys;
        Array.to_list (Vec.to_array v) = ys);
    prop "iter and fold_left match the list functions" QCheck.(list small_int) (fun xs ->
        let v = Vec.create () in
        List.iter (Vec.push v) xs;
        let seen = ref [] in
        Vec.iter (fun x -> seen := x :: !seen) v;
        List.rev !seen = xs && Vec.fold_left ( + ) 0 v = List.fold_left ( + ) 0 xs);
  ]

let suites =
  [
    ("util.units", units_tests);
    ("util.rng", rng_tests);
    ("util.stats", stats_tests);
    ("util.histogram", histogram_tests);
    ("util.heap", heap_tests);
    ("util.ring_buffer", ring_tests);
    ("util.table", table_tests);
    ("util.vec", vec_tests);
  ]
