(* Unit and property tests for ihnet_topology. *)

open Ihnet_topology
module U = Ihnet_util.Units

let tc name f = Alcotest.test_case name `Quick f
let check_close ?(eps = 1e-6) msg expected actual = Alcotest.(check (float eps)) msg expected actual

let dev_id topo name =
  match Topology.device_by_name topo name with
  | Some d -> d.Device.id
  | None -> Alcotest.failf "no device %s" name

(* {1 PCIe model} *)

let pcie_tests =
  [
    tc "gen4 x16 raw bandwidth matches Figure 1's ~256 Gbps" (fun () ->
        let bw = Pcie.raw_bandwidth (Pcie.v Pcie.Gen4 16) in
        let gbps = U.to_gbps bw in
        Alcotest.(check bool) "in 250..256" true (gbps > 250.0 && gbps < 256.0));
    tc "gen3 x16 is ~126 Gbps" (fun () ->
        let gbps = U.to_gbps (Pcie.raw_bandwidth (Pcie.v Pcie.Gen3 16)) in
        Alcotest.(check bool) "in 120..128" true (gbps > 120.0 && gbps < 128.0));
    tc "gen1/2 pay 8b/10b" (fun () ->
        check_close "0.8" 0.8 (Pcie.encoding_efficiency Pcie.Gen1);
        check_close "0.8" 0.8 (Pcie.encoding_efficiency Pcie.Gen2));
    tc "bandwidth scales with lanes" (fun () ->
        let x8 = Pcie.raw_bandwidth (Pcie.v Pcie.Gen4 8) in
        let x16 = Pcie.raw_bandwidth (Pcie.v Pcie.Gen4 16) in
        check_close ~eps:1.0 "double" (2.0 *. x8) x16);
    tc "payload efficiency improves with MPS" (fun () ->
        let e128 = Pcie.payload_efficiency ~mps:128 in
        let e512 = Pcie.payload_efficiency ~mps:512 in
        Alcotest.(check bool) "monotone" true (e512 > e128);
        Alcotest.(check bool) "sub-unit" true (e512 < 1.0));
    tc "rejects bad lane counts" (fun () ->
        Alcotest.check_raises "x3" (Invalid_argument "Pcie.v: lanes must be one of 1,2,4,8,16")
          (fun () -> ignore (Pcie.v Pcie.Gen4 3)));
  ]

(* {1 Hostconfig} *)

let hostconfig_tests =
  [
    tc "default validates" (fun () ->
        match Hostconfig.validate Hostconfig.default with
        | Ok () -> ()
        | Error e -> Alcotest.fail e);
    tc "rejects non-power-of-two MPS" (fun () ->
        let c = { Hostconfig.default with Hostconfig.pcie_mps = 200 } in
        Alcotest.(check bool) "error" true (Result.is_error (Hostconfig.validate c)));
    tc "rejects io_ways > llc_ways" (fun () ->
        let c =
          {
            Hostconfig.default with
            Hostconfig.ddio = Hostconfig.Ddio_on { llc_ways = 4; io_ways = 8; way_size = 1e6 };
          }
        in
        Alcotest.(check bool) "error" true (Result.is_error (Hostconfig.validate c)));
    tc "rejects negative interrupt moderation" (fun () ->
        let c = { Hostconfig.default with Hostconfig.interrupt_moderation = -1.0 } in
        Alcotest.(check bool) "error" true (Result.is_error (Hostconfig.validate c)));
  ]

(* {1 Graph construction} *)

let graph_tests =
  [
    tc "add_device assigns dense ids and unique names" (fun () ->
        let topo = Topology.create ~name:"t" () in
        let a = Topology.add_device topo ~name:"a" ~kind:Device.Gpu ~socket:0 in
        let b = Topology.add_device topo ~name:"b" ~kind:Device.Gpu ~socket:0 in
        Alcotest.(check int) "id0" 0 a.Device.id;
        Alcotest.(check int) "id1" 1 b.Device.id;
        Alcotest.check_raises "dup" (Invalid_argument "Topology.add_device: duplicate name a")
          (fun () -> ignore (Topology.add_device topo ~name:"a" ~kind:Device.Gpu ~socket:0)));
    tc "add_link validates endpoints" (fun () ->
        let topo = Topology.create ~name:"t" () in
        let a = Topology.add_device topo ~name:"a" ~kind:Device.Gpu ~socket:0 in
        Alcotest.check_raises "unknown" (Invalid_argument "Topology.add_link: unknown endpoint")
          (fun () ->
            ignore
              (Topology.add_link topo ~kind:Link.Intra_socket ~a:a.Device.id ~b:99 ~capacity:1.0
                 ~base_latency:0.0));
        Alcotest.check_raises "self" (Invalid_argument "Topology.add_link: self-loop") (fun () ->
            ignore
              (Topology.add_link topo ~kind:Link.Intra_socket ~a:a.Device.id ~b:a.Device.id
                 ~capacity:1.0 ~base_latency:0.0)));
    tc "neighbors lists incident links" (fun () ->
        let topo = Topology.create ~name:"t" () in
        let a = Topology.add_device topo ~name:"a" ~kind:Device.Gpu ~socket:0 in
        let b = Topology.add_device topo ~name:"b" ~kind:Device.Gpu ~socket:0 in
        let c = Topology.add_device topo ~name:"c" ~kind:Device.Gpu ~socket:0 in
        ignore
          (Topology.add_link topo ~kind:Link.Intra_socket ~a:a.Device.id ~b:b.Device.id
             ~capacity:1.0 ~base_latency:1.0);
        ignore
          (Topology.add_link topo ~kind:Link.Intra_socket ~a:a.Device.id ~b:c.Device.id
             ~capacity:1.0 ~base_latency:1.0);
        Alcotest.(check int) "two" 2 (List.length (Topology.neighbors topo a.Device.id));
        Alcotest.(check int) "one" 1 (List.length (Topology.neighbors topo b.Device.id)));
    tc "validate rejects disconnected graphs" (fun () ->
        let topo = Topology.create ~name:"t" () in
        ignore (Topology.add_device topo ~name:"a" ~kind:Device.Gpu ~socket:0);
        ignore (Topology.add_device topo ~name:"b" ~kind:Device.Gpu ~socket:0);
        Alcotest.(check bool) "error" true (Result.is_error (Topology.validate topo)));
    tc "validate rejects empty topology" (fun () ->
        let topo = Topology.create ~name:"t" () in
        Alcotest.(check bool) "error" true (Result.is_error (Topology.validate topo)));
  ]

(* {1 Builders} *)

let builder_tests =
  [
    tc "two_socket_server validates" (fun () ->
        match Topology.validate (Builder.two_socket_server ()) with
        | Ok () -> ()
        | Error es -> Alcotest.fail (String.concat "; " es));
    tc "two_socket_server has Figure 1's inventory" (fun () ->
        let topo = Builder.two_socket_server () in
        let count k =
          List.length
            (Topology.find_devices topo (fun d -> Device.kind_label d.Device.kind = k))
        in
        Alcotest.(check int) "sockets" 2 (count "cpu-socket");
        Alcotest.(check int) "switches" 2 (count "pcie-switch");
        Alcotest.(check int) "nics" 3 (count "nic");
        Alcotest.(check int) "gpus" 2 (count "gpu");
        Alcotest.(check int) "ssds" 2 (count "nvme-ssd");
        Alcotest.(check int) "dimms" 12 (count "dimm"));
    tc "dgx_like has 8 GPUs and 8 NICs" (fun () ->
        let topo = Builder.dgx_like () in
        let count p = List.length (Topology.find_devices topo p) in
        Alcotest.(check int) "gpus" 8
          (count (fun d -> match d.Device.kind with Device.Gpu -> true | _ -> false));
        Alcotest.(check int) "nics" 8
          (count (fun d -> match d.Device.kind with Device.Nic _ -> true | _ -> false));
        Alcotest.(check bool) "valid" true (Result.is_ok (Topology.validate topo)));
    tc "epyc_like validates" (fun () ->
        Alcotest.(check bool) "valid" true
          (Result.is_ok (Topology.validate (Builder.epyc_like ()))));
    tc "minimal validates" (fun () ->
        Alcotest.(check bool) "valid" true (Result.is_ok (Topology.validate (Builder.minimal ()))));
    tc "scaled grows with parameters" (fun () ->
        let small = Builder.scaled ~sockets:1 ~switches_per_socket:1 ~devices_per_switch:2 () in
        let large = Builder.scaled ~sockets:4 ~switches_per_socket:4 ~devices_per_switch:4 () in
        Alcotest.(check bool) "more devices" true
          (Topology.device_count large > Topology.device_count small);
        Alcotest.(check bool) "valid small" true (Result.is_ok (Topology.validate small));
        Alcotest.(check bool) "valid large" true (Result.is_ok (Topology.validate large)));
    tc "pcie upstream/downstream classification" (fun () ->
        let topo = Builder.two_socket_server () in
        let sw = dev_id topo "pciesw0" and rp = dev_id topo "rp0.0" and nic = dev_id topo "nic0" in
        (match Topology.links_between topo rp sw with
        | [ l ] ->
          Alcotest.(check bool) "upstream" true (Topology.pcie_position topo l = `Upstream);
          Alcotest.(check (option int)) "class 3" (Some 3) (Topology.figure1_class topo l)
        | _ -> Alcotest.fail "expected one rp-sw link");
        match Topology.links_between topo sw nic with
        | [ l ] ->
          Alcotest.(check bool) "downstream" true (Topology.pcie_position topo l = `Downstream);
          Alcotest.(check (option int)) "class 4" (Some 4) (Topology.figure1_class topo l)
        | _ -> Alcotest.fail "expected one sw-nic link");
    tc "to_dot mentions every device" (fun () ->
        let topo = Builder.minimal () in
        let dot = Topology.to_dot topo in
        Alcotest.(check bool) "nonempty" true (String.length dot > 100));
  ]

(* {1 Routing} *)

let routing_tests =
  [
    tc "shortest path nic0 -> dimm crosses expected devices" (fun () ->
        let topo = Builder.two_socket_server () in
        let nic = dev_id topo "nic0" and dimm = dev_id topo "dimm0.0.0" in
        match Routing.shortest_path topo nic dimm with
        | None -> Alcotest.fail "no path"
        | Some p ->
          Alcotest.(check bool) "well formed" true (Path.well_formed topo p);
          let names =
            List.map (fun id -> (Topology.device topo id).Device.name) (Path.devices p)
          in
          Alcotest.(check bool) "via switch" true (List.mem "pciesw0" names);
          Alcotest.(check bool) "via socket" true (List.mem "socket0" names));
    tc "trivial path when src = dst" (fun () ->
        let topo = Builder.minimal () in
        let nic = dev_id topo "nic0" in
        match Routing.shortest_path topo nic nic with
        | Some p -> Alcotest.(check int) "no hops" 0 (Path.hop_count p)
        | None -> Alcotest.fail "expected trivial path");
    tc "avoid breaks the only route" (fun () ->
        let topo = Builder.minimal () in
        let nic = dev_id topo "nic0" and rp = dev_id topo "rp0.0" in
        match Topology.links_between topo rp nic with
        | [ l ] ->
          let sock = dev_id topo "socket0" in
          Alcotest.(check bool) "unreachable" true
            (Routing.shortest_path ~avoid:[ l.Link.id ] topo nic sock = None)
        | _ -> Alcotest.fail "expected single link");
    tc "cross-socket path uses inter-socket link" (fun () ->
        let topo = Builder.two_socket_server () in
        let gpu0 = dev_id topo "gpu0" and gpu1 = dev_id topo "gpu1" in
        match Routing.shortest_path topo gpu0 gpu1 with
        | None -> Alcotest.fail "no path"
        | Some p ->
          let kinds = List.map (fun (l : Link.t) -> Link.kind_label l.Link.kind) (Path.links p) in
          Alcotest.(check bool) "crosses sockets" true (List.mem "inter-socket" kinds));
    tc "path latency equals sum of link latencies" (fun () ->
        let topo = Builder.minimal () in
        let nic = dev_id topo "nic0" and sock = dev_id topo "socket0" in
        match Routing.shortest_path topo nic sock with
        | None -> Alcotest.fail "no path"
        | Some p ->
          let expect =
            List.fold_left (fun acc (l : Link.t) -> acc +. l.Link.base_latency) 0.0 (Path.links p)
          in
          check_close "latency" expect (Path.base_latency p));
    tc "k_shortest returns distinct loop-free paths, best first" (fun () ->
        let topo = Builder.two_socket_server () in
        let gpu0 = dev_id topo "gpu0" and d = dev_id topo "dimm1.0.0" in
        let paths = Routing.k_shortest_paths ~k:3 topo gpu0 d in
        Alcotest.(check bool) "at least one" true (List.length paths >= 1);
        let weights = List.map (Routing.path_weight `Latency) paths in
        let sorted = List.sort compare weights in
        Alcotest.(check (list (float 1e-9))) "sorted" sorted weights;
        let keys =
          List.map (fun p -> List.map (fun (l : Link.t) -> l.Link.id) (Path.links p)) paths
        in
        Alcotest.(check int) "distinct" (List.length keys)
          (List.length (List.sort_uniq compare keys));
        List.iter
          (fun p ->
            let devs = Path.devices p in
            Alcotest.(check int) "loop free" (List.length devs)
              (List.length (List.sort_uniq compare devs)))
          paths);
    tc "weight `Hops minimizes hop count" (fun () ->
        let topo = Builder.two_socket_server () in
        let nic = dev_id topo "nic0" and sock = dev_id topo "socket0" in
        match Routing.shortest_path ~weight:`Hops topo nic sock with
        | None -> Alcotest.fail "no path"
        | Some p -> Alcotest.(check int) "hops" 4 (Path.hop_count p));
  ]

(* Property: on every builder topology, any two endpoint devices are
   connected, and Dijkstra's result is well-formed. *)
let routing_properties =
  let topos =
    [ Builder.two_socket_server (); Builder.dgx_like (); Builder.epyc_like (); Builder.minimal () ]
  in
  let gen =
    QCheck.make
      ~print:(fun (i, a, b) -> Printf.sprintf "topo%d %d->%d" i a b)
      QCheck.Gen.(
        let* i = int_range 0 (List.length topos - 1) in
        let topo = List.nth topos i in
        let n = Topology.device_count topo in
        let* a = int_range 0 (n - 1) in
        let* b = int_range 0 (n - 1) in
        return (i, a, b))
  in
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"all pairs reachable and paths well-formed" ~count:300 gen
         (fun (i, a, b) ->
           let topo = List.nth topos i in
           match Routing.shortest_path topo a b with
           | None -> false
           | Some p ->
             Path.well_formed topo p && p.Path.src = a && p.Path.dst = b));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"hop-count path never longer than latency path (in hops)"
         ~count:200 gen (fun (i, a, b) ->
           let topo = List.nth topos i in
           match
             (Routing.shortest_path ~weight:`Hops topo a b, Routing.shortest_path topo a b)
           with
           | Some h, Some l -> Path.hop_count h <= Path.hop_count l
           | _ -> false));
  ]

let suites =
  [
    ("topology.pcie", pcie_tests);
    ("topology.hostconfig", hostconfig_tests);
    ("topology.graph", graph_tests);
    ("topology.builders", builder_tests);
    ("topology.routing", routing_tests @ routing_properties);
  ]
