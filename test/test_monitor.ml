(* Unit and integration tests for ihnet_monitor. *)

open Ihnet_monitor
module E = Ihnet_engine
module T = Ihnet_topology
module U = Ihnet_util
module W = Ihnet_workload

let tc name f = Alcotest.test_case name `Quick f

let make_host ?config () =
  let topo = T.Builder.two_socket_server ?config () in
  let sim = E.Sim.create () in
  let fab = E.Fabric.create sim topo in
  (topo, sim, fab)

let dev topo name =
  match T.Topology.device_by_name topo name with
  | Some d -> d.T.Device.id
  | None -> Alcotest.failf "no device %s" name

let path fab a b =
  let topo = E.Fabric.topology fab in
  match T.Routing.shortest_path topo (dev topo a) (dev topo b) with
  | Some p -> p
  | None -> Alcotest.failf "no path %s->%s" a b

let first_link (p : T.Path.t) =
  match p.T.Path.hops with
  | h :: _ -> (h.T.Path.link.T.Link.id, h.T.Path.dir)
  | [] -> Alcotest.fail "empty path"

(* {1 Counter fidelity} *)

let counter_tests =
  [
    tc "hardware fidelity hides per-tenant bytes" (fun () ->
        let _, sim, fab = make_host () in
        let c = Counter.create fab ~fidelity:(Counter.Hardware { max_read_hz = 1000.0 }) in
        let p = path fab "nic0" "dimm0.0.0" in
        ignore (E.Fabric.start_flow fab ~tenant:3 ~path:p ~size:E.Flow.Unbounded ());
        E.Sim.run ~until:(U.Units.ms 1.0) sim;
        let link, dir = first_link p in
        let r = Counter.read c link dir ~tenants:[ 3 ] in
        Alcotest.(check bool) "bytes visible" true (r.Counter.wire_bytes > 0.0);
        Alcotest.(check (list (pair int (float 0.0)))) "no tenant view" [] r.Counter.per_tenant);
    tc "software fidelity sees tenants but not induced traffic" (fun () ->
        let _, sim, fab = make_host () in
        let c = Counter.create fab ~fidelity:Counter.Software in
        let p = path fab "nic0" "dimm0.0.0" in
        ignore (E.Fabric.start_flow fab ~tenant:3 ~path:p ~size:E.Flow.Unbounded ());
        E.Sim.run ~until:(U.Units.ms 1.0) sim;
        let link, dir = first_link p in
        let r = Counter.read c link dir ~tenants:[ 3 ] in
        (match r.Counter.per_tenant with
        | [ (3, b) ] -> Alcotest.(check bool) "tenant bytes" true (b > 0.0)
        | _ -> Alcotest.fail "expected tenant 3 attribution");
        Alcotest.(check bool) "ddio hidden" true (Counter.ddio_hit_rate c ~socket:0 = None));
    tc "hardware reads are rate limited (stale reads)" (fun () ->
        let _, sim, fab = make_host () in
        let c = Counter.create fab ~fidelity:(Counter.Hardware { max_read_hz = 1000.0 }) in
        let p = path fab "nic0" "dimm0.0.0" in
        ignore (E.Fabric.start_flow fab ~tenant:1 ~path:p ~size:E.Flow.Unbounded ());
        let link, dir = first_link p in
        E.Sim.run ~until:(U.Units.ms 1.0) sim;
        let r1 = Counter.read c link dir ~tenants:[] in
        (* 10 us later: below the 1 ms min interval -> same stale value *)
        E.Sim.run ~until:(U.Units.ms 1.0 +. U.Units.us 10.0) sim;
        let r2 = Counter.read c link dir ~tenants:[] in
        Alcotest.(check (float 0.0)) "stale" r1.Counter.wire_bytes r2.Counter.wire_bytes;
        (* 2 ms later: fresh *)
        E.Sim.run ~until:(U.Units.ms 3.0) sim;
        let r3 = Counter.read c link dir ~tenants:[] in
        Alcotest.(check bool) "fresh" true (r3.Counter.wire_bytes > r1.Counter.wire_bytes));
    tc "oracle sees everything" (fun () ->
        let _, sim, fab = make_host () in
        let c = Counter.create fab ~fidelity:Counter.Oracle in
        let p = path fab "nic0" "socket0" in
        ignore (E.Fabric.start_flow fab ~tenant:2 ~llc_target:true ~path:p ~size:E.Flow.Unbounded ());
        E.Sim.run ~until:(U.Units.ms 1.0) sim;
        Alcotest.(check bool) "ddio visible" true (Counter.ddio_hit_rate c ~socket:0 <> None);
        let link, dir = first_link p in
        let r = Counter.read c link dir ~tenants:[ 2 ] in
        Alcotest.(check bool) "tenant visible" true (r.Counter.per_tenant <> []));
  ]

(* {1 Telemetry} *)

let telemetry_tests =
  [
    tc "record and query" (fun () ->
        let tm = Telemetry.create () in
        Telemetry.record tm ~series:"a" ~at:1.0 10.0;
        Telemetry.record tm ~series:"a" ~at:2.0 20.0;
        Alcotest.(check int) "len" 2 (Telemetry.length tm ~series:"a");
        (match Telemetry.latest tm ~series:"a" with
        | Some s -> Alcotest.(check (float 0.0)) "latest" 20.0 s.Telemetry.value
        | None -> Alcotest.fail "no latest");
        Alcotest.(check (list string)) "names" [ "a" ] (Telemetry.series_names tm));
    tc "window filters by time" (fun () ->
        let tm = Telemetry.create () in
        List.iter (fun i -> Telemetry.record tm ~series:"s" ~at:(float_of_int i) 0.0) [ 1; 2; 3; 4 ];
        Alcotest.(check int) "since 3" 2 (List.length (Telemetry.window tm ~series:"s" ~since:3.0)));
    tc "rate_of_change derives bytes/s" (fun () ->
        let tm = Telemetry.create () in
        Telemetry.record tm ~series:"bytes" ~at:0.0 0.0;
        Telemetry.record tm ~series:"bytes" ~at:1e9 5e9;
        match Telemetry.rate_of_change tm ~series:"bytes" with
        | Some r -> Alcotest.(check (float 1.0)) "5 GB/s" 5e9 r
        | None -> Alcotest.fail "expected rate");
    tc "capacity bound drops oldest" (fun () ->
        let tm = Telemetry.create ~capacity_per_series:4 () in
        for i = 1 to 10 do
          Telemetry.record tm ~series:"x" ~at:(float_of_int i) (float_of_int i)
        done;
        Alcotest.(check int) "bounded" 4 (Telemetry.length tm ~series:"x");
        Alcotest.(check int) "dropped" 6 (Telemetry.dropped_samples tm);
        Alcotest.(check int) "footprint" 4 (Telemetry.memory_samples tm));
    tc "dropped_samples accumulates across series" (fun () ->
        let tm = Telemetry.create ~capacity_per_series:3 () in
        let fill series n =
          for i = 1 to n do
            Telemetry.record tm ~series ~at:(float_of_int i) (float_of_int i)
          done
        in
        fill "x" 5;
        fill "y" 4;
        fill "z" 2;
        Alcotest.(check int) "x+y overflowed, z did not" 3 (Telemetry.dropped_samples tm);
        Alcotest.(check int) "retained" 8 (Telemetry.memory_samples tm));
    tc "window and values only see retained samples after wraparound" (fun () ->
        let tm = Telemetry.create ~capacity_per_series:4 () in
        for i = 1 to 10 do
          Telemetry.record tm ~series:"w" ~at:(float_of_int i) (10.0 *. float_of_int i)
        done;
        (* samples 1..6 were overwritten: since the beginning of time
           still yields only the surviving tail, oldest first *)
        let w = Telemetry.window tm ~series:"w" ~since:0.0 in
        Alcotest.(check (list (float 0.0)))
          "retained tail" [ 7.0; 8.0; 9.0; 10.0 ]
          (List.map (fun s -> s.Telemetry.at) w);
        Alcotest.(check (list (float 0.0)))
          "values oldest first" [ 70.0; 80.0; 90.0; 100.0 ]
          (Array.to_list (Telemetry.values tm ~series:"w")));
    tc "rate_of_change is unconfused by wraparound" (fun () ->
        let tm = Telemetry.create ~capacity_per_series:2 () in
        (* a cumulative counter whose early history is long gone *)
        List.iter
          (fun (at, v) -> Telemetry.record tm ~series:"c" ~at v)
          [ (0.0, 0.0); (1e9, 1e9); (2e9, 3e9); (3e9, 6e9) ];
        match Telemetry.rate_of_change tm ~series:"c" with
        | Some r -> Alcotest.(check (float 1.0)) "last two samples only" 3e9 r
        | None -> Alcotest.fail "expected a rate");
    tc "to_csv orders by series name then time" (fun () ->
        let tm = Telemetry.create () in
        (* interleaved, registered b-first: output must still be sorted *)
        Telemetry.record tm ~series:"b" ~at:2.0 1.0;
        Telemetry.record tm ~series:"a" ~at:1.0 2.0;
        Telemetry.record tm ~series:"b" ~at:1.0 3.0;
        Telemetry.record tm ~series:"a" ~at:2.0 4.0;
        let csv = Telemetry.to_csv tm in
        Alcotest.(check string)
          "sorted csv" "series,at_ns,value\na,1,2\na,2,4\nb,1,3\nb,2,1\n" csv;
        Alcotest.(check string)
          "explicit selection keeps caller order"
          "series,at_ns,value\nb,1,3\nb,2,1\na,1,2\na,2,4\n"
          (Telemetry.to_csv ~series:[ "b"; "a" ] tm));
  ]

(* {1 Fleet ranking and snapshot stability} *)

let fleet_member ?(busy = false) label =
  let _, sim, fab = make_host () in
  if busy then
    ignore (E.Fabric.start_flow fab ~tenant:1 ~path:(path fab "nic0" "socket0")
              ~size:E.Flow.Unbounded ());
  ignore sim;
  { Fleet.label; counter = Counter.create fab ~fidelity:Counter.Software; tenants = [ 1 ]; slo = None }

let fleet_tests =
  [
    tc "worst host first" (fun () ->
        let t =
          Fleet.collect
            [ fleet_member "calm-a"; fleet_member ~busy:true "hot"; fleet_member "calm-b" ]
        in
        (match t.Fleet.hosts with
        | first :: _ ->
          Alcotest.(check string) "congested host leads" "hot" first.Fleet.label;
          Alcotest.(check bool) "it is congested" true (first.Fleet.congested_links > 0)
        | [] -> Alcotest.fail "empty fleet");
        Alcotest.(check (list string))
          "attention list" [ "hot" ]
          (List.map (fun s -> s.Fleet.label) (Fleet.needs_attention t)));
    tc "equal severity ranks by label, not hash order" (fun () ->
        let labels = [ "node-d"; "node-b"; "node-e"; "node-a"; "node-c" ] in
        let t = Fleet.collect (List.map fleet_member labels) in
        Alcotest.(check (list string))
          "ties alphabetical" (List.sort compare labels)
          (List.map (fun s -> s.Fleet.label) t.Fleet.hosts));
    tc "top talkers break rate ties by tenant" (fun () ->
        let _, _, fab = make_host () in
        let p = path fab "nic0" "socket0" in
        (* same path, same limits: the shares are bit-identical *)
        List.iter
          (fun tenant ->
            ignore (E.Fabric.start_flow fab ~tenant ~path:p ~size:E.Flow.Unbounded ()))
          [ 4; 2; 3; 1 ];
        let c = Counter.create fab ~fidelity:Counter.Software in
        let h = Health.collect c ~tenants:[ 1; 2; 3; 4 ] () in
        Alcotest.(check (list int))
          "tenant order deterministic" [ 1; 2; 3; 4 ]
          (List.map (fun (t : Health.talker) -> t.Health.tenant) h.Health.top_talkers));
    tc "health snapshots of a steady host are stable" (fun () ->
        let _, _, fab = make_host () in
        let p = path fab "nic0" "socket0" in
        ignore (E.Fabric.start_flow fab ~tenant:1 ~path:p ~size:E.Flow.Unbounded ());
        ignore (E.Fabric.start_flow fab ~tenant:2 ~path:p ~size:E.Flow.Unbounded ());
        let c = Counter.create fab ~fidelity:Counter.Software in
        let shape (h : Health.t) =
          ( List.map (fun (c : Health.congested_link) -> (c.Health.link, c.Health.dir)) h.Health.congested,
            List.map (fun (t : Health.talker) -> t.Health.tenant) h.Health.top_talkers )
        in
        let h1 = Health.collect c ~tenants:[ 1; 2 ] () in
        let h2 = Health.collect c ~tenants:[ 1; 2 ] () in
        Alcotest.(check (pair (list (pair int bool)) (list int)))
          "consecutive windows agree"
          (let cs, ts = shape h1 in
           (List.map (fun (l, d) -> (l, d = T.Link.Rev)) cs, ts))
          (let cs, ts = shape h2 in
           (List.map (fun (l, d) -> (l, d = T.Link.Rev)) cs, ts)));
    tc "config findings are stable across identical hosts" (fun () ->
        let f1 = (fleet_member "a").Fleet.counter in
        let f2 = (fleet_member "b").Fleet.counter in
        let findings c = Anomaly.check_configuration (E.Fabric.topology (Counter.fabric c)) in
        Alcotest.(check (list string)) "same topology, same findings" (findings f1) (findings f2);
        Alcotest.(check (list string)) "re-check is a fixpoint" (findings f1) (findings f1));
  ]

(* {1 Sampler} *)

let sampler_tests =
  [
    tc "sampler populates series at the configured period" (fun () ->
        let _, sim, fab = make_host () in
        let config = { (Sampler.default_config ()) with Sampler.period = U.Units.us 100.0 } in
        let s = Sampler.start fab config in
        E.Sim.run ~until:(U.Units.ms 1.0) sim;
        Alcotest.(check bool) "ticked ~10x" true (Sampler.ticks s >= 9 && Sampler.ticks s <= 11);
        let names = Telemetry.series_names (Sampler.telemetry s) in
        Alcotest.(check bool) "has util series" true
          (List.exists (fun n -> n = Sampler.util_series 0 T.Link.Fwd) names);
        Sampler.stop s);
    tc "local processing burns cpu time" (fun () ->
        let _, sim, fab = make_host () in
        let config =
          {
            (Sampler.default_config ()) with
            Sampler.processing = Sampler.Local { cost_per_sample = 100.0 };
          }
        in
        let s = Sampler.start fab config in
        E.Sim.run ~until:(U.Units.ms 1.0) sim;
        Alcotest.(check bool) "cpu burned" true (Sampler.cpu_time_consumed s > 0.0);
        Alcotest.(check (float 0.0)) "nothing shipped" 0.0 (Sampler.shipping_rate s);
        Sampler.stop s);
    tc "shipping consumes fabric bandwidth as Monitoring class" (fun () ->
        let _, sim, fab = make_host () in
        let config =
          {
            (Sampler.default_config ()) with
            Sampler.processing = Sampler.Ship { collector = "socket0"; bytes_per_sample = 64.0 };
          }
        in
        let s = Sampler.start fab config in
        E.Sim.run ~until:(U.Units.ms 2.0) sim;
        Alcotest.(check bool) "shipping rate" true (Sampler.shipping_rate s > 0.0);
        Alcotest.(check bool) "wire bytes" true (Sampler.monitoring_wire_bytes s > 0.0);
        Sampler.stop s;
        Alcotest.(check (float 0.0)) "stopped" 0.0 (Sampler.shipping_rate s));
    tc "faster sampling ships more" (fun () ->
        let run period =
          let _, sim, fab = make_host () in
          let config =
            {
              (Sampler.default_config ()) with
              Sampler.period;
              processing = Sampler.Ship { collector = "socket0"; bytes_per_sample = 64.0 };
            }
          in
          let s = Sampler.start fab config in
          E.Sim.run ~until:(U.Units.ms 2.0) sim;
          Sampler.shipping_rate s
        in
        Alcotest.(check bool) "10x" true (run (U.Units.us 10.0) > run (U.Units.us 100.0) *. 5.0));
  ]

(* {1 Heartbeat + localization} *)

let heartbeat_tests =
  [
    tc "healthy fabric: no failures, no suspects" (fun () ->
        let _, sim, fab = make_host () in
        let hb = Heartbeat.start fab () in
        E.Sim.run ~until:(U.Units.ms 20.0) sim;
        Alcotest.(check bool) "rounds" true (Heartbeat.rounds hb > 10);
        Alcotest.(check (list (pair int int))) "no failures" [] (Heartbeat.failing_pairs hb);
        Alcotest.(check bool) "no suspects" true (Heartbeat.localize hb = []);
        Alcotest.(check bool) "no detection" true (Heartbeat.first_detection hb = None);
        Heartbeat.stop hb);
    tc "silent switch degradation is detected and localized" (fun () ->
        let topo, sim, fab = make_host () in
        let hb = Heartbeat.start fab () in
        E.Sim.run ~until:(U.Units.ms 10.0) sim;
        (* degrade the rp0.0 - pciesw0 upstream link: extra 2 us silently *)
        let rp = dev topo "rp0.0" and sw = dev topo "pciesw0" in
        let bad_link =
          match T.Topology.links_between topo rp sw with
          | [ l ] -> l.T.Link.id
          | _ -> Alcotest.fail "expected one link"
        in
        E.Fabric.inject_fault fab bad_link
          (E.Fault.degrade ~capacity_factor:1.0 ~extra_latency:(U.Units.us 2.0) ());
        E.Sim.run ~until:(U.Units.ms 15.0) sim;
        (match Heartbeat.first_detection hb with
        | Some at ->
          Alcotest.(check bool) "detected soon after injection" true
            (at >= U.Units.ms 10.0 && at <= U.Units.ms 13.0)
        | None -> Alcotest.fail "not detected");
        (match Heartbeat.localize hb with
        | (top :: _) as suspects ->
          (* serial links on the same probe paths are indistinguishable
             by boolean tomography: require the true link to be among
             the suspects at the maximal score *)
          let truth =
            List.find_opt (fun s -> s.Heartbeat.link = bad_link) suspects
          in
          (match truth with
          | Some s ->
            Alcotest.(check (float 1e-9)) "maximal score" top.Heartbeat.score s.Heartbeat.score
          | None -> Alcotest.fail "true link not suspected")
        | [] -> Alcotest.fail "no suspects");
        Heartbeat.stop hb);
    tc "link loss shows as lost probes" (fun () ->
        let topo, sim, fab = make_host () in
        let hb = Heartbeat.start fab () in
        E.Sim.run ~until:(U.Units.ms 10.0) sim;
        let nic = dev topo "nic1" and rp = dev topo "rp0.1" in
        let bad_link =
          match T.Topology.links_between topo rp nic with
          | [ l ] -> l.T.Link.id
          | _ -> Alcotest.fail "expected one link"
        in
        E.Fabric.inject_fault fab bad_link E.Fault.down;
        E.Sim.run ~until:(U.Units.ms 13.0) sim;
        let lost =
          List.exists
            (fun (r : Heartbeat.probe_result) -> r.Heartbeat.outcome = `Lost)
            (Heartbeat.results hb)
        in
        Alcotest.(check bool) "lost probes" true lost;
        Heartbeat.stop hb);
    tc "a probing subset only watches its own paths" (fun () ->
        let topo, sim, fab = make_host () in
        (* only the two GPUs probe each other *)
        let hb =
          Heartbeat.start fab ~devices:[ dev topo "gpu0"; dev topo "gpu1" ] ()
        in
        E.Sim.run ~until:(U.Units.ms 10.0) sim;
        Alcotest.(check int) "two ordered pairs" 2 (List.length (Heartbeat.results hb));
        (* a fault on nic1's link is invisible to this mesh *)
        (match T.Topology.links_between topo (dev topo "rp0.1") (dev topo "nic1") with
        | [ l ] ->
          E.Fabric.inject_fault fab l.T.Link.id
            { E.Fault.capacity_factor = 1.0; extra_latency = U.Units.us 50.0; loss_prob = 0.0 }
        | _ -> Alcotest.fail "expected one link");
        E.Sim.run ~until:(U.Units.ms 15.0) sim;
        Alcotest.(check bool) "blind outside its scope" true (Heartbeat.healthy hb);
        Heartbeat.stop hb);
    tc "probe traffic is accounted" (fun () ->
        let _, sim, fab = make_host () in
        let hb = Heartbeat.start fab () in
        E.Sim.run ~until:(U.Units.ms 5.0) sim;
        Alcotest.(check bool) "bytes" true (Heartbeat.probe_wire_bytes hb > 0.0);
        Heartbeat.stop hb);
  ]

(* {1 Anomaly platform} *)

let anomaly_tests =
  [
    tc "threshold detector fires on crossing" (fun () ->
        let a = Anomaly.create () in
        Anomaly.watch a ~series:"u" (Anomaly.Threshold { above = Some 0.9; below = None });
        Anomaly.observe a ~series:"u" ~at:1.0 0.5;
        Alcotest.(check bool) "quiet" true (Anomaly.alarms a = []);
        Anomaly.observe a ~series:"u" ~at:2.0 0.95;
        Alcotest.(check int) "fired" 1 (List.length (Anomaly.alarms a)));
    tc "ewma detector fires on spikes only after warm-up" (fun () ->
        let a = Anomaly.create () in
        Anomaly.watch a ~series:"lat" (Anomaly.Ewma_deviation { alpha = 0.2; k = 4.0 });
        let rng = U.Rng.create 5 in
        for i = 1 to 100 do
          Anomaly.observe a ~series:"lat" ~at:(float_of_int i) (100.0 +. U.Rng.gaussian rng 0.0 3.0)
        done;
        Alcotest.(check bool) "quiet in control" true (Anomaly.alarms a = []);
        Anomaly.observe a ~series:"lat" ~at:101.0 500.0;
        Alcotest.(check bool) "fired" true (Anomaly.alarms a <> []));
    tc "cusum catches small persistent shift" (fun () ->
        let a = Anomaly.create () in
        Anomaly.watch a ~series:"util" (Anomaly.Cusum { drift = 0.5; threshold = 5.0 });
        let rng = U.Rng.create 5 in
        for i = 1 to 50 do
          Anomaly.observe a ~series:"util" ~at:(float_of_int i) (0.5 +. U.Rng.gaussian rng 0.0 0.02)
        done;
        Alcotest.(check bool) "quiet" true (Anomaly.alarms a = []);
        for i = 51 to 90 do
          Anomaly.observe a ~series:"util" ~at:(float_of_int i) (0.58 +. U.Rng.gaussian rng 0.0 0.02)
        done;
        Alcotest.(check bool) "fired" true (Anomaly.alarms a <> []));
    tc "feed consumes telemetry incrementally" (fun () ->
        let a = Anomaly.create () in
        let tm = Telemetry.create () in
        Anomaly.watch a ~series:"x" (Anomaly.Threshold { above = Some 10.0; below = None });
        Telemetry.record tm ~series:"x" ~at:1.0 20.0;
        Anomaly.feed a tm;
        Alcotest.(check int) "one alarm" 1 (List.length (Anomaly.alarms a));
        (* feeding again without new samples must not duplicate *)
        Anomaly.feed a tm;
        Alcotest.(check int) "still one" 1 (List.length (Anomaly.alarms a));
        Telemetry.record tm ~series:"x" ~at:2.0 30.0;
        Anomaly.feed a tm;
        Alcotest.(check int) "two" 2 (List.length (Anomaly.alarms a)));
    tc "clean default config has no findings" (fun () ->
        let topo = T.Builder.two_socket_server () in
        Alcotest.(check (list string)) "clean" [] (Anomaly.check_configuration topo));
    tc "misconfigurations are reported" (fun () ->
        let config =
          {
            T.Hostconfig.default with
            T.Hostconfig.ddio = T.Hostconfig.Ddio_off;
            pcie_mps = 128;
            acs = true;
            interrupt_moderation = U.Units.us 50.0;
          }
        in
        let topo = T.Builder.two_socket_server ~config () in
        let findings = Anomaly.check_configuration topo in
        Alcotest.(check bool) "several" true (List.length findings >= 3));
  ]

(* {1 Root cause} *)

let rootcause_tests =
  [
    tc "names the aggressor tenant on the congested hop" (fun () ->
        let _, sim, fab = make_host () in
        (* victim: kv-like path; aggressor: tenant 7 loopback via same subtree *)
        let victim_path = path fab "ext" "socket0" in
        ignore
          (E.Fabric.start_flow fab ~tenant:1 ~demand:1e8 ~path:victim_path
             ~size:E.Flow.Unbounded ());
        let agg = W.Rdma.start_loopback fab ~tenant:7 ~nic:"nic0" () in
        E.Sim.run ~until:(U.Units.ms 1.0) sim;
        let counter = Counter.create fab ~fidelity:Counter.Oracle in
        let before = Rootcause.snapshot counter ~tenants:[ 1; 7 ] in
        E.Sim.run ~until:(U.Units.ms 5.0) sim;
        let after = Rootcause.snapshot counter ~tenants:[ 1; 7 ] in
        let culprits = Rootcause.diagnose counter ~before ~after ~victim_path in
        (match Rootcause.top_aggressor culprits with
        | Some (tn, rate) ->
          Alcotest.(check int) "tenant 7" 7 tn;
          Alcotest.(check bool) "dominant" true (rate > 1e9)
        | None -> Alcotest.fail "no aggressor found");
        W.Rdma.stop_loopback agg);
    tc "snapshots must be ordered" (fun () ->
        let _, sim, fab = make_host () in
        let counter = Counter.create fab ~fidelity:Counter.Oracle in
        let snap = Rootcause.snapshot counter ~tenants:[] in
        E.Sim.run ~until:(U.Units.ms 1.0) sim;
        let later = Rootcause.snapshot counter ~tenants:[] in
        let victim_path = path fab "ext" "socket0" in
        Alcotest.check_raises "order" (Invalid_argument "Rootcause.diagnose: snapshots out of order")
          (fun () -> ignore (Rootcause.diagnose counter ~before:later ~after:snap ~victim_path)));
    tc "hardware fidelity cannot name the aggressor" (fun () ->
        let _, sim, fab = make_host () in
        (* the victim enters via nic0, where the aggressor sits *)
        let victim_path = T.Path.concat (path fab "ext" "nic0") (path fab "nic0" "socket0") in
        let agg = W.Rdma.start_loopback fab ~tenant:7 ~nic:"nic0" () in
        E.Sim.run ~until:(U.Units.ms 1.0) sim;
        let counter = Counter.create fab ~fidelity:(Counter.Hardware { max_read_hz = 1e6 }) in
        let before = Rootcause.snapshot counter ~tenants:[ 7 ] in
        E.Sim.run ~until:(U.Units.ms 5.0) sim;
        let after = Rootcause.snapshot counter ~tenants:[ 7 ] in
        let culprits = Rootcause.diagnose counter ~before ~after ~victim_path in
        (* congestion is visible... *)
        Alcotest.(check bool) "hop found" true
          (match culprits with c :: _ -> c.Rootcause.utilization > 0.9 | [] -> false);
        (* ...but nobody can be blamed *)
        Alcotest.(check bool) "no attribution" true
          (Rootcause.top_aggressor culprits = None);
        W.Rdma.stop_loopback agg);
  ]

(* {1 Diagnostics} *)

let diagnostics_tests =
  [
    tc "ping_once returns a plausible RTT" (fun () ->
        let _, _, fab = make_host () in
        match Diagnostics.ping_once fab ~src:"nic0" ~dst:"dimm0.0.0" with
        | Some rtt -> Alcotest.(check bool) "order of magnitude" true (rtt > 400.0 && rtt < 5_000.0)
        | None -> Alcotest.fail "lost on healthy fabric");
    tc "ping runs its schedule and reports" (fun () ->
        let _, sim, fab = make_host () in
        let finished = ref false in
        let report =
          Diagnostics.ping fab ~src:"nic0" ~dst:"socket0" ~count:20
            ~on_done:(fun _ -> finished := true)
            ()
        in
        E.Sim.run sim;
        Alcotest.(check bool) "done" true !finished;
        Alcotest.(check int) "sent" 20 report.Diagnostics.sent;
        Alcotest.(check int) "none lost" 0 report.Diagnostics.lost;
        Alcotest.(check int) "rtts" 20 (U.Histogram.count report.Diagnostics.rtts));
    tc "ping counts losses on a faulty path" (fun () ->
        let topo, sim, fab = make_host () in
        let nic = dev topo "nic1" and rp = dev topo "rp0.1" in
        (match T.Topology.links_between topo rp nic with
        | [ l ] ->
          E.Fabric.inject_fault fab l.T.Link.id
            { E.Fault.capacity_factor = 1.0; extra_latency = 0.0; loss_prob = 0.5 }
        | _ -> Alcotest.fail "expected one link");
        let report = Diagnostics.ping fab ~src:"nic1" ~dst:"socket0" ~count:100 () in
        E.Sim.run sim;
        Alcotest.(check bool) "some lost" true
          (report.Diagnostics.lost > 20 && report.Diagnostics.lost < 80));
    tc "trace decomposes the path per hop" (fun () ->
        let _, _, fab = make_host () in
        let hops = Diagnostics.trace fab ~src:"ext" ~dst:"dimm0.0.0" in
        Alcotest.(check bool) "several hops" true (List.length hops >= 5);
        let last = List.nth hops (List.length hops - 1) in
        Alcotest.(check string) "ends at dimm" "dimm0.0.0" last.Diagnostics.hop_device;
        List.iter
          (fun (h : Diagnostics.trace_hop) ->
            Alcotest.(check bool) "loaded >= base" true
              (h.Diagnostics.loaded_latency >= h.Diagnostics.base_latency))
          hops);
    tc "perf measures the bottleneck bandwidth" (fun () ->
        let _, sim, fab = make_host () in
        let got = ref None in
        Diagnostics.perf fab ~src:"nic0" ~dst:"dimm0.0.0" ~duration:(U.Units.ms 5.0)
          ~on_done:(fun r -> got := Some r)
          ();
        E.Sim.run sim;
        (match !got with
        | Some r ->
          (* DDR channel is the bottleneck: ~25.6 GB/s *)
          Alcotest.(check bool) "rate" true
            (r.Diagnostics.achieved_rate > 24e9 && r.Diagnostics.achieved_rate < 26e9);
          Alcotest.(check bool) "bottleneck reported" true (r.Diagnostics.bottleneck <> None)
        | None -> Alcotest.fail "no report");
        Alcotest.(check int) "probe flow cleaned up" 0 (E.Fabric.flow_count fab));
    tc "perf_now estimates without traffic" (fun () ->
        let _, _, fab = make_host () in
        let bw = Diagnostics.perf_now fab ~src:"gpu0" ~dst:"ssd0" in
        Alcotest.(check bool) "pcie-ish" true (bw > 20e9 && bw < 35e9));
    tc "dump captures flows on a link sorted by rate" (fun () ->
        let _, sim, fab = make_host () in
        let p = path fab "nic0" "dimm0.0.0" in
        ignore (E.Fabric.start_flow fab ~tenant:1 ~cap:1e9 ~path:p ~size:E.Flow.Unbounded ());
        ignore (E.Fabric.start_flow fab ~tenant:2 ~path:p ~size:E.Flow.Unbounded ());
        E.Sim.run ~until:(U.Units.us 10.0) sim;
        let link, dir = first_link p in
        let captured = Diagnostics.dump fab ~link ~dir () in
        Alcotest.(check int) "two flows" 2 (List.length captured);
        (match captured with
        | a :: b :: _ ->
          Alcotest.(check bool) "sorted" true (a.Diagnostics.rate >= b.Diagnostics.rate);
          Alcotest.(check int) "big one is tenant 2" 2 a.Diagnostics.tenant
        | _ -> Alcotest.fail "expected two");
        (* direction filter: reverse dir sees nothing *)
        let captured_rev = Diagnostics.dump fab ~link ~dir:(T.Link.opposite dir) () in
        Alcotest.(check int) "dir filter" 0 (List.length captured_rev));
  ]

(* {1 Latency-percentile plane: telemetry, sampler, fleet, anomaly} *)

(* a member whose flow sketch holds exactly [values] (recorded through
   the fabric's own handle — the sketch plane is shared state, which is
   precisely what Fleet merges) *)
let sketch_member label values =
  let _, _, fab = make_host () in
  E.Fabric.enable_latency_sketches fab;
  (match E.Fabric.flow_latency_sketch fab with
  | Some sk -> List.iter (U.Sketch.record sk) values
  | None -> Alcotest.fail "sketch plane missing");
  { Fleet.label; counter = Counter.create fab ~fidelity:Counter.Software; tenants = [ 1 ]; slo = None }

let latency_plane_tests =
  [
    tc "telemetry pct snapshot roundtrips" (fun () ->
        let tm = Telemetry.create () in
        let sk = U.Sketch.create () in
        List.iter (U.Sketch.record sk) [ 10.0; 20.0; 30.0 ];
        let snap = U.Sketch.snapshot sk in
        Telemetry.record_pct tm ~series:"link.0.fwd.latency" ~at:1.0 snap;
        (match Telemetry.latest_pct tm ~series:"link.0.fwd.latency" with
        | Some got ->
          Alcotest.(check int) "count" 3 got.U.Sketch.s_count;
          Alcotest.(check (float 0.0)) "p99" snap.U.Sketch.s_p99 got.U.Sketch.s_p99;
          Alcotest.(check (float 0.0)) "max" snap.U.Sketch.s_max got.U.Sketch.s_max
        | None -> Alcotest.fail "roundtrip lost");
        Alcotest.(check bool) "fields are plain sub-series" true
          (List.mem "link.0.fwd.latency.p99" (Telemetry.series_names tm));
        Alcotest.(check bool) "unknown series reads None" true
          (match Telemetry.latest_pct tm ~series:"nope" with None -> true | Some _ -> false));
    tc "sampler ships latency percentiles when the plane is on" (fun () ->
        let _, sim, fab = make_host () in
        E.Fabric.enable_latency_sketches fab;
        let p = path fab "nic0" "socket0" in
        ignore (E.Fabric.start_flow fab ~tenant:1 ~path:p ~size:E.Flow.Unbounded ());
        let s = Sampler.start fab (Sampler.default_config ()) in
        E.Sim.run ~until:(U.Units.ms 1.0) sim;
        let link, dir = first_link p in
        (match Telemetry.latest_pct (Sampler.telemetry s) ~series:(Sampler.latency_series link dir) with
        | Some snap -> Alcotest.(check bool) "samples" true (snap.U.Sketch.s_count > 0)
        | None -> Alcotest.fail "no latency snapshot in telemetry");
        Sampler.stop s);
    tc "dormant plane leaves telemetry latency-free" (fun () ->
        let _, sim, fab = make_host () in
        let p = path fab "nic0" "socket0" in
        ignore (E.Fabric.start_flow fab ~tenant:1 ~path:p ~size:E.Flow.Unbounded ());
        let s = Sampler.start fab (Sampler.default_config ()) in
        E.Sim.run ~until:(U.Units.ms 1.0) sim;
        let has_latency =
          List.exists
            (fun n ->
              let needle = ".latency" in
              let ln = String.length needle and n_len = String.length n in
              let rec go i = i + ln <= n_len && (String.sub n i ln = needle || go (i + 1)) in
              go 0)
            (Telemetry.series_names (Sampler.telemetry s))
        in
        Alcotest.(check bool) "no latency series" false has_latency;
        Sampler.stop s);
    tc "fleet merges member sketches into fleet percentiles" (fun () ->
        let a = sketch_member "a" [ 100.0; 200.0; 300.0 ] in
        let b = sketch_member "b" [ 1000.0 ] in
        let calm = fleet_member "calm" (* dormant plane: no tail *) in
        let t = Fleet.collect [ b; calm; a ] in
        (match t.Fleet.fleet_tail with
        | Some s ->
          Alcotest.(check int) "merged count" 4 s.U.Sketch.s_count;
          Alcotest.(check (float 1e-9)) "max exact" 1000.0 s.U.Sketch.s_max;
          (* bit-identical to recording everything into one sketch *)
          let all = U.Sketch.create () in
          List.iter (U.Sketch.record all) [ 100.0; 200.0; 300.0; 1000.0 ];
          Alcotest.(check bool) "== single-sketch percentiles" true
            (Int64.bits_of_float s.U.Sketch.s_p99
            = Int64.bits_of_float (U.Sketch.snapshot all).U.Sketch.s_p99)
        | None -> Alcotest.fail "no fleet tail");
        let status label =
          match List.find_opt (fun (h : Fleet.host_status) -> h.Fleet.label = label) t.Fleet.hosts with
          | Some h -> h
          | None -> Alcotest.failf "host %s missing" label
        in
        Alcotest.(check bool) "member tail present" true ((status "a").Fleet.tail <> None);
        Alcotest.(check bool) "dormant member has none" true ((status "calm").Fleet.tail = None));
    tc "watch_tail alarms on a p99 breach" (fun () ->
        let tm = Telemetry.create () in
        let an = Anomaly.create () in
        Anomaly.watch_tail an ~series:"flow.latency" ~p99_above:500.0 ();
        let sk = U.Sketch.create () in
        List.iter (U.Sketch.record sk) [ 100.0; 120.0 ];
        Telemetry.record_pct tm ~series:"flow.latency" ~at:1.0 (U.Sketch.snapshot sk);
        Anomaly.feed an tm;
        Alcotest.(check int) "quiet under the bound" 0 (List.length (Anomaly.alarms an));
        List.iter (U.Sketch.record sk) (List.init 300 (fun _ -> 2000.0));
        Telemetry.record_pct tm ~series:"flow.latency" ~at:2.0 (U.Sketch.snapshot sk);
        Anomaly.feed an tm;
        match Anomaly.first_alarm an with
        | Some a -> Alcotest.(check string) "p99 sub-series fired" "flow.latency.p99" a.Anomaly.series
        | None -> Alcotest.fail "no alarm on breach");
  ]

let suites =
  [
    ("monitor.counter", counter_tests);
    ("monitor.telemetry", telemetry_tests);
    ("monitor.fleet", fleet_tests);
    ("monitor.sampler", sampler_tests);
    ("monitor.heartbeat", heartbeat_tests);
    ("monitor.anomaly", anomaly_tests);
    ("monitor.rootcause", rootcause_tests);
    ("monitor.diagnostics", diagnostics_tests);
    ("monitor.latency", latency_plane_tests);
  ]
