(* Fleet control plane: channel fault model, lossy channels, typed
   controller errors, cross-host failover/reconciliation, and the
   determinism property (byte-identical decisions and per-host digests
   at every pool width). *)

module E = Ihnet_engine
module T = Ihnet_topology
module U = Ihnet_util
module M = Ihnet_manager
module F = Ihnet_fleet
module Chanfault = E.Chanfault

let tc name f = Alcotest.test_case name `Quick f

let prop name ?(count = 30) gen f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count gen f)

(* a fast-clocked controller so tests stay in the microsecond range *)
let quick_config =
  {
    F.Controller.default_config with
    F.Controller.round_len = U.Units.us 100.0;
  }

let mk ?(hosts = 2) ?(config = quick_config) ?(seed = 9) ?domains () =
  let t = F.Controller.create ~config ~seed ?domains () in
  for i = 0 to hosts - 1 do
    F.Controller.spawn t ~preset:Ihnet.Host.Minimal (Printf.sprintf "host%d" i)
  done;
  t

let intent i = M.Intent.pipe ~tenant:i ~src:"nic0" ~dst:"socket0" ~rate:(U.Units.gbps 2.0)

let placements_of t label tenant =
  match F.Controller.host t label with
  | None -> []
  | Some host -> (
    match Ihnet.Host.manager host with
    | None -> []
    | Some mgr ->
      List.filter (fun (p : M.Placement.t) -> p.M.Placement.tenant = tenant) (M.Manager.placements mgr))

(* {1 Chanfault: RNG only under fault} *)

let chanfault_tests =
  [
    tc "healthy model delivers instantly and never draws" (fun () ->
        let rng = U.Rng.create 1 in
        let before = U.Rng.peek rng in
        (match Chanfault.apply rng Chanfault.none with
        | Chanfault.Delivered { delay = 0; copies = 1 } -> ()
        | _ -> Alcotest.fail "expected instant single delivery");
        Alcotest.(check int64) "no draw" before (U.Rng.peek rng));
    tc "partition drops everything without drawing" (fun () ->
        let rng = U.Rng.create 1 in
        let before = U.Rng.peek rng in
        for _ = 1 to 10 do
          match Chanfault.apply rng Chanfault.partition with
          | Chanfault.Dropped -> ()
          | Chanfault.Delivered _ -> Alcotest.fail "partition leaked a message"
        done;
        Alcotest.(check int64) "no draw" before (U.Rng.peek rng));
    tc "total loss drops, certain duplication copies" (fun () ->
        let rng = U.Rng.create 1 in
        (match Chanfault.apply rng (Chanfault.lossy ~loss:1.0 ()) with
        | Chanfault.Dropped -> ()
        | Chanfault.Delivered _ -> Alcotest.fail "loss 1.0 delivered");
        match Chanfault.apply rng (Chanfault.lossy ~loss:0.0 ~dup_prob:1.0 ()) with
        | Chanfault.Delivered { copies = 2; _ } -> ()
        | _ -> Alcotest.fail "dup 1.0 did not duplicate");
    tc "fixed delay needs no draw; merge adds delays and keeps partition" (fun () ->
        let rng = U.Rng.create 1 in
        let before = U.Rng.peek rng in
        (match Chanfault.apply rng (Chanfault.delayed ~lo:3 ~hi:3) with
        | Chanfault.Delivered { delay = 3; copies = 1 } -> ()
        | _ -> Alcotest.fail "expected delay 3");
        Alcotest.(check int64) "no draw for a fixed delay" before (U.Rng.peek rng);
        let m = Chanfault.merge (Chanfault.delayed ~lo:1 ~hi:2) Chanfault.partition in
        Alcotest.(check bool) "partition dominates" true m.Chanfault.partitioned;
        Alcotest.(check int) "delays add" 1 m.Chanfault.delay_lo;
        Alcotest.(check string) "describe" "partitioned" (Chanfault.describe m));
  ]

(* {1 Channel} *)

let channel_tests =
  [
    tc "perfect channel is a one-tick FIFO and never draws" (fun () ->
        let ch = F.Channel.create (U.Rng.create 3) in
        let before = F.Channel.rng_peek ch in
        F.Channel.send ch "a";
        F.Channel.send ch "b";
        Alcotest.(check (list string)) "in order" [ "a"; "b" ] (F.Channel.tick ch);
        Alcotest.(check (list string)) "drained" [] (F.Channel.tick ch);
        Alcotest.(check int64) "no draw" before (F.Channel.rng_peek ch));
    tc "delay fault postpones delivery by whole ticks" (fun () ->
        let ch = F.Channel.create (U.Rng.create 3) in
        F.Channel.set_fault ch (Chanfault.delayed ~lo:2 ~hi:2);
        F.Channel.send ch 7;
        Alcotest.(check (list int)) "tick 1" [] (F.Channel.tick ch);
        Alcotest.(check (list int)) "tick 2" [] (F.Channel.tick ch);
        Alcotest.(check (list int)) "tick 3" [ 7 ] (F.Channel.tick ch));
    tc "clear models a crash losing everything in flight" (fun () ->
        let ch = F.Channel.create (U.Rng.create 3) in
        F.Channel.send ch 1;
        Alcotest.(check int) "in flight" 1 (F.Channel.in_flight ch);
        F.Channel.clear ch;
        Alcotest.(check (list int)) "gone" [] (F.Channel.tick ch));
  ]

(* {1 Typed fleet errors} *)

let error_tests =
  [
    tc "fleet error constructors render stable messages" (fun () ->
        Alcotest.(check string) "unreachable"
          "host host3 unreachable: control channel timed out"
          (M.Mgr_error.to_string (M.Mgr_error.Host_unreachable "host3"));
        Alcotest.(check string) "retries"
          "retries exhausted sending place to host host3"
          (M.Mgr_error.to_string
             (M.Mgr_error.Retries_exhausted { host = "host3"; command = "place" }));
        Alcotest.(check string) "no feasible host"
          "tenant 7: no host in the fleet can admit the placement"
          (M.Mgr_error.to_string (M.Mgr_error.No_feasible_host { tenant = 7 }));
        (* the pre-existing constructors still render byte-identically *)
        Alcotest.(check string) "legacy unchanged"
          "only pipe placements can be re-placed"
          (M.Mgr_error.to_string M.Mgr_error.Not_a_pipe));
  ]

(* {1 Controller: placement, failover, reconciliation} *)

let has_decision t pred = List.exists pred (F.Controller.decisions t)

let controller_tests =
  [
    tc "tenants land on the least-loaded hosts and stay put" (fun () ->
        let t = mk ~hosts:3 () in
        F.Controller.submit t (intent 1);
        F.Controller.submit t (intent 2);
        F.Controller.submit t (intent 3);
        F.Controller.run t ~rounds:6;
        let homes =
          List.filter_map
            (fun i ->
              match F.Controller.tenant_view t i with
              | Some (F.Controller.Placed l) -> Some l
              | _ -> None)
            [ 1; 2; 3 ]
        in
        Alcotest.(check int) "all placed" 3 (List.length homes);
        (* least-loaded spreading: three equal tenants, three hosts *)
        Alcotest.(check int) "spread out" 3 (List.length (List.sort_uniq compare homes));
        Alcotest.(check bool) "no migrations on a healthy fleet" false
          (has_decision t (function F.Controller.D_migrated _ -> true | _ -> false)));
    tc "a crashed host's tenants fail over to a sibling" (fun () ->
        let t = mk ~hosts:2 () in
        F.Controller.submit t (intent 1);
        F.Controller.run t ~rounds:4;
        let home =
          match F.Controller.tenant_view t 1 with
          | Some (F.Controller.Placed l) -> l
          | _ -> Alcotest.fail "tenant 1 not placed"
        in
        F.Controller.crash t home;
        F.Controller.run t ~rounds:12;
        Alcotest.(check bool) "host declared lost" true
          (has_decision t (function
            | F.Controller.D_host_lost { host } -> host = home
            | _ -> false));
        (match F.Controller.tenant_view t 1 with
        | Some (F.Controller.Placed l) ->
          Alcotest.(check bool) "moved off the dead host" true (l <> home)
        | _ -> Alcotest.fail "tenant 1 lost during failover");
        Alcotest.(check bool) "migration recorded as host-down" true
          (has_decision t (function
            | F.Controller.D_migrated { tenant = 1; from_; reason = F.Controller.Host_down; _ } ->
              from_ = home
            | _ -> false)));
    tc "no feasible host yields an explicit degraded verdict, restored on clear" (fun () ->
        let t = mk ~hosts:1 () in
        F.Controller.submit t (intent 1);
        F.Controller.run t ~rounds:4;
        F.Controller.crash t "host0";
        F.Controller.run t ~rounds:12;
        (match F.Controller.tenant_view t 1 with
        | Some F.Controller.Fleet_degraded -> ()
        | _ -> Alcotest.fail "expected a fleet-level degraded verdict");
        Alcotest.(check bool) "degraded decision carries No_feasible_host" true
          (has_decision t (function
            | F.Controller.D_degraded
                { tenant = 1; cause = M.Mgr_error.No_feasible_host { tenant = 1 } } ->
              true
            | _ -> false));
        F.Controller.restart t "host0";
        F.Controller.run t ~rounds:16;
        (match F.Controller.tenant_view t 1 with
        | Some (F.Controller.Placed "host0") -> ()
        | _ -> Alcotest.fail "tenant not restored after the host came back");
        Alcotest.(check bool) "restore recorded" true
          (has_decision t (function
            | F.Controller.D_restored { tenant = 1; host = "host0" } -> true
            | _ -> false)));
    tc "a healed partition reconciles without double-applying commands" (fun () ->
        let t = mk ~hosts:2 () in
        F.Controller.submit t (intent 1);
        F.Controller.run t ~rounds:4;
        let home =
          match F.Controller.tenant_view t 1 with
          | Some (F.Controller.Placed l) -> l
          | _ -> Alcotest.fail "tenant 1 not placed"
        in
        let other = if home = "host0" then "host1" else "host0" in
        F.Controller.partition t home;
        F.Controller.run t ~rounds:12;
        (* failed over while the partitioned host kept serving on its
           last-known policy *)
        (match F.Controller.tenant_view t 1 with
        | Some (F.Controller.Placed l) -> Alcotest.(check string) "failed over" other l
        | _ -> Alcotest.fail "tenant 1 not failed over");
        Alcotest.(check int) "old host still runs the last-known policy" 1
          (List.length (placements_of t home 1));
        F.Controller.heal t home;
        F.Controller.run t ~rounds:12;
        Alcotest.(check bool) "stray revoked on heal" true
          (has_decision t (function
            | F.Controller.D_reconciled { host; revoked = [ 1 ] } -> host = home
            | _ -> false));
        Alcotest.(check int) "stray copy gone" 0 (List.length (placements_of t home 1));
        Alcotest.(check int) "exactly one live placement fleet-wide" 1
          (List.length (placements_of t other 1)));
    tc "lossy duplicated channels still apply each command exactly once" (fun () ->
        let t = mk ~hosts:1 ~seed:21 () in
        F.Controller.set_chanfault t "host0"
          (Chanfault.lossy ~loss:0.3 ~dup_prob:0.5 ());
        F.Controller.submit t (intent 1);
        F.Controller.run t ~rounds:40;
        (match F.Controller.tenant_view t 1 with
        | Some (F.Controller.Placed "host0") -> ()
        | _ -> Alcotest.fail "tenant never landed through the lossy channel");
        Alcotest.(check int) "single application despite retries and duplicates" 1
          (List.length (placements_of t "host0" 1)));
    tc "the fleet roll-up sees controller SLO verdicts" (fun () ->
        let t = mk ~hosts:2 () in
        F.Controller.submit t (intent 1);
        F.Controller.run t ~rounds:6;
        let f = F.Controller.collect t in
        Alcotest.(check int) "both hosts in the roll-up" 2
          (List.length f.Ihnet_monitor.Fleet.hosts);
        List.iter
          (fun (s : Ihnet_monitor.Fleet.host_status) ->
            Alcotest.(check int) "no violated SLO on a healthy fleet" 0
              s.Ihnet_monitor.Fleet.slo_violated)
          f.Ihnet_monitor.Fleet.hosts);
  ]

(* {1 Idle discipline: a dormant controller is invisible} *)

let idle_tests =
  [
    tc "wrapping an unmanaged host leaves its run byte-identical" (fun () ->
        let build () =
          let host = Ihnet.Host.create ~seed:11 ~domains:1 Ihnet.Host.Minimal in
          let fab = Ihnet.Host.fabric host in
          let topo = Ihnet.Host.topology host in
          let dv name =
            match T.Topology.device_by_name topo name with
            | Some d -> d.T.Device.id
            | None -> Alcotest.failf "no device %s" name
          in
          let p =
            match T.Routing.shortest_path topo (dv "nic0") (dv "socket0") with
            | Some p -> p
            | None -> Alcotest.fail "no path"
          in
          ignore (E.Fabric.start_flow fab ~tenant:1 ~path:p ~size:E.Flow.Unbounded ());
          host
        in
        let bare = build () in
        for _ = 1 to 20 do
          Ihnet.Host.run_for bare (U.Units.us 100.0)
        done;
        let wrapped = build () in
        let t = F.Controller.create ~config:quick_config ~seed:9 () in
        F.Controller.add_host t ~label:"solo" wrapped;
        let rng_before = F.Controller.channel_rng_peek t "solo" in
        F.Controller.run t ~rounds:20;
        Alcotest.(check int64) "scan digests equal"
          (Ihnet.Host.scan bare).Ihnet_record.Scanport.s_digest
          (Ihnet.Host.scan wrapped).Ihnet_record.Scanport.s_digest;
        Alcotest.(check int) "no decisions" 0 (List.length (F.Controller.decisions t));
        Alcotest.(check int64) "channel plane never drew" rng_before
          (F.Controller.channel_rng_peek t "solo"));
  ]

(* {1 Determinism: byte-identical at every pool width} *)

(* A random fleet op sequence, interpreted identically against
   controllers running their host-shard phase at pool widths 1, 2 and
   4: the rendered decision logs and every per-host scan digest must
   be byte-identical (MODEL.md §16). Ops are small ints so qcheck
   shrinks nicely. *)
let interpret ops ~domains =
  let t = mk ~hosts:4 ~seed:77 ~domains () in
  let next_tenant = ref 0 in
  List.iter
    (fun op ->
      match op mod 8 with
      | 0 | 1 ->
        incr next_tenant;
        F.Controller.submit t (intent !next_tenant)
      | 2 ->
        let label = Printf.sprintf "host%d" (op / 8 mod 4) in
        if F.Controller.host_view t label <> Some F.Controller.Crashed then
          F.Controller.crash t label
      | 3 ->
        let label = Printf.sprintf "host%d" (op / 8 mod 4) in
        if F.Controller.host_view t label = Some F.Controller.Crashed then
          F.Controller.restart t label
      | 4 -> F.Controller.partition t (Printf.sprintf "host%d" (op / 8 mod 4))
      | 5 -> F.Controller.heal t (Printf.sprintf "host%d" (op / 8 mod 4))
      | _ -> F.Controller.round t)
    ops;
  F.Controller.run t ~rounds:4;
  ( F.Controller.decisions_fingerprint t,
    F.Controller.digest t,
    F.Controller.host_digests t )

let determinism_props =
  [
    prop "random op sequences are byte-identical at pool widths 1, 2 and 4" ~count:10
      QCheck.(list_of_size Gen.(int_range 4 24) (int_range 0 255))
      (fun ops ->
        let fp1, d1, h1 = interpret ops ~domains:1 in
        let fp2, d2, h2 = interpret ops ~domains:2 in
        let fp4, d4, h4 = interpret ops ~domains:4 in
        fp1 = fp2 && fp2 = fp4 && d1 = d2 && d2 = d4 && h1 = h2 && h2 = h4);
  ]

let suites =
  [
    ("fleet.chanfault", chanfault_tests);
    ("fleet.channel", channel_tests);
    ("fleet.errors", error_tests);
    ("fleet.controller", controller_tests);
    ("fleet.idle", idle_tests);
    ("fleet.determinism", determinism_props);
  ]
