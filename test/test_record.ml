(* Flight-recorder tests: trace codec round-trips, record → replay
   conformance on a mixed scenario, divergence detection under a
   deliberate perturbation, the invariant checker, and the qcheck
   property that any random command sequence replays bit-for-bit with
   identical final allocations and telemetry. *)

module E = Ihnet_engine
module T = Ihnet_topology
module U = Ihnet_util
module Mon = Ihnet_monitor
module Rec = Ihnet_record

let tc name f = Alcotest.test_case name `Quick f

let fresh ?(seed = 11) () =
  let topo = T.Builder.two_socket_server () in
  let sim = E.Sim.create () in
  let fab = E.Fabric.create ~seed sim topo in
  (topo, sim, fab)

let dev topo n =
  match T.Topology.device_by_name topo n with
  | Some d -> d.T.Device.id
  | None -> Alcotest.fail ("no device " ^ n)

let route topo a b =
  match T.Routing.shortest_path topo (dev topo a) (dev topo b) with
  | Some p -> p
  | None -> Alcotest.fail (Printf.sprintf "%s unreachable from %s" b a)

let run_for sim ns = E.Sim.run ~until:(E.Sim.now sim +. ns) sim

let parse_buf buf =
  match Rec.Trace.parse (Buffer.contents buf) with
  | Ok t -> t
  | Error e -> Alcotest.fail ("trace parse: " ^ e)

(* {1 Codec} *)

let sample_spec =
  {
    Rec.Trace.flow_id = 3;
    tenant = 2;
    cls = "payload";
    weight = 1.5;
    floor = 0.0;
    cap = infinity;
    demand = 12.345e9;
    payload_bytes = 4096;
    working_set_pages = 7;
    llc_target = true;
    size = Some 1.25e6;
    src = 0;
    dst = 9;
    hops = [ (4, 0); (7, 1) ];
  }

let sample_config =
  {
    Rec.Trace.iommu = Some (512, 0.97, 180.0);
    ddio = Some (20, 2, 1.5e6);
    pcie_mps = 256;
    relaxed_ordering = true;
    acs = false;
    interrupt_moderation = 50_000.0;
  }

let sample_digest =
  {
    Rec.Trace.d_at = 123456.789;
    d_epoch = 42;
    d_flows = 5;
    d_alloc = 0x1234_5678_9abc_def0L;
    d_floor = Rec.Trace.fnv_basis;
    d_bytes = -1L;
  }

let codec_tests =
  let roundtrip l =
    let s = Rec.Trace.line_to_string l in
    match Rec.Trace.line_of_string s with
    | Ok l' ->
      if l' <> l then Alcotest.fail ("codec round-trip changed the line: " ^ s)
    | Error e -> Alcotest.fail (Printf.sprintf "codec rejected its own output %s: %s" s e)
  in
  [
    tc "every line kind round-trips exactly" (fun () ->
        List.iter roundtrip
          [
            Rec.Trace.Header
              {
                Rec.Trace.version = Rec.Trace.version;
                preset = "two-socket-server";
                seed = 99;
                label = "codec";
                digest_every = 8;
                host_config = sample_config;
              };
            Rec.Trace.Op { at = 0.0; op = Rec.Trace.Start_flow sample_spec };
            Rec.Trace.Op
              {
                at = 1.0e6;
                op =
                  Rec.Trace.Start_flow
                    { sample_spec with Rec.Trace.size = None; cap = infinity; demand = infinity };
              };
            Rec.Trace.Op { at = 17.25; op = Rec.Trace.Stop_flow 3 };
            Rec.Trace.Op
              {
                at = 1.0;
                op =
                  Rec.Trace.Set_limits { flow_id = 3; weight = 2.0; floor = 1e9; cap = infinity };
              };
            Rec.Trace.Op
              {
                at = 2.0;
                op =
                  Rec.Trace.Inject_fault
                    {
                      link = 5;
                      fault =
                        { Rec.Trace.capacity_factor = 0.05; extra_latency = 1e3; loss_prob = 0.0 };
                    };
              };
            Rec.Trace.Op { at = 3.0; op = Rec.Trace.Clear_fault 5 };
            Rec.Trace.Op { at = 4.0; op = Rec.Trace.Clear_all_faults };
            Rec.Trace.Op { at = 5.0; op = Rec.Trace.Set_config sample_config };
            Rec.Trace.Op
              {
                at = 5.5;
                op = Rec.Trace.Set_config { sample_config with Rec.Trace.iommu = None; ddio = None };
              };
            Rec.Trace.Op { at = 6.0; op = Rec.Trace.Sync };
            Rec.Trace.Op { at = 7.0; op = Rec.Trace.Batch_start };
            Rec.Trace.Op { at = 7.0; op = Rec.Trace.Batch_end };
            Rec.Trace.Completed { at = 8.125e6; flow_id = 3; transferred = 1.25e6 };
            Rec.Trace.Action
              { at = 9.0; link = 2; stage = "reroute"; detail = "case 4: migrated 1 placement" };
            Rec.Trace.Digest sample_digest;
            Rec.Trace.Final { sample_digest with Rec.Trace.d_epoch = 43 };
          ]);
    tc "awkward floats survive the trip" (fun () ->
        (* 17 significant digits: the bit pattern must be identical *)
        List.iter
          (fun v ->
            let l = Rec.Trace.Completed { at = v; flow_id = 0; transferred = v } in
            match Rec.Trace.line_of_string (Rec.Trace.line_to_string l) with
            | Ok (Rec.Trace.Completed c) ->
              if Int64.bits_of_float c.at <> Int64.bits_of_float v then
                Alcotest.fail (Printf.sprintf "float %h drifted to %h" v c.at)
            | Ok _ -> Alcotest.fail "line kind changed"
            | Error e -> Alcotest.fail e)
          [ 0.1; 1.0 /. 3.0; 4.0e18; 5.0e-324; 1.7976931348623157e308; infinity; neg_infinity ]);
    tc "nan is representable json" (fun () ->
        let j = Rec.Trace.jfloat nan in
        let v = Rec.Trace.as_float (Rec.Trace.json_of_string (Rec.Trace.json_to_string j)) in
        Alcotest.(check bool) "nan round-trips" true (Float.is_nan v));
    tc "malformed lines are errors, not exceptions" (fun () ->
        List.iter
          (fun s ->
            match Rec.Trace.line_of_string s with
            | Ok _ -> Alcotest.fail ("accepted malformed line: " ^ s)
            | Error _ -> ())
          [ ""; "{"; "[1,2]"; "{\"line\":\"nope\"}"; "{\"at\":1.0}" ]);
  ]

(* {1 A mixed scenario: every op kind, then replay} *)

(* Drives flows over several link classes with a batch, faults, a
   clear-all, a config flip and bounded transfers, so the trace carries
   every op kind plus completion annotations. *)
let record_mixed ?(digest_every = 2) () =
  let topo, sim, fab = fresh () in
  let buf = Buffer.create 8192 in
  let r =
    Rec.Recorder.attach ~digest_every ~label:"test-mixed" ~seed:11
      ~sink:(Rec.Recorder.buffer_sink buf) fab
  in
  let start ?size ?demand a b tenant =
    E.Fabric.start_flow fab ~tenant ?demand ~path:(route topo a b)
      ~size:(match size with Some b -> E.Flow.Bytes b | None -> E.Flow.Unbounded)
      ()
  in
  let f1 = start "ext" "socket0" 1 ~demand:(U.Units.gbytes_per_s 6.0) in
  run_for sim (U.Units.us 200.0);
  let f2 = start "gpu0" "ssd0" 2 ~size:3e6 in
  ignore (start "nic0" "socket0" 3 ~size:1.5e6 ~demand:(U.Units.gbytes_per_s 4.0));
  run_for sim (U.Units.us 300.0);
  E.Fabric.batch fab (fun () ->
      E.Fabric.set_flow_limits fab f1 ~weight:2.0 ();
      ignore (start "socket0" "socket1" 1 ~size:2e6));
  run_for sim (U.Units.us 300.0);
  let pcie =
    List.filter
      (fun (l : T.Link.t) -> match l.T.Link.kind with T.Link.Pcie _ -> true | _ -> false)
      (T.Topology.links topo)
  in
  let sick = (List.hd pcie).T.Link.id in
  E.Fabric.inject_fault fab sick (E.Fault.degrade ~capacity_factor:0.1 ());
  run_for sim (U.Units.us 400.0);
  E.Fabric.clear_all_faults fab;
  E.Fabric.set_config fab { T.Hostconfig.default with T.Hostconfig.ddio = T.Hostconfig.Ddio_off };
  run_for sim (U.Units.ms 1.0);
  E.Fabric.stop_flow fab f1;
  (if f2.E.Flow.state = E.Flow.Running then E.Fabric.stop_flow fab f2);
  run_for sim (U.Units.us 500.0);
  Rec.Recorder.stop r;
  parse_buf buf

let replay_exn ?setup ?perturb ?reference trace =
  match Rec.Replay.run ?setup ?perturb ?reference trace with
  | Ok r -> r
  | Error e -> Alcotest.fail ("replay refused the trace: " ^ e)

let replay_tests =
  [
    tc "mixed scenario replays with zero divergences" (fun () ->
        let trace = record_mixed () in
        let r = replay_exn trace in
        if not (Rec.Replay.ok r) then
          Alcotest.fail (Format.asprintf "%a" Rec.Replay.pp_report r);
        Alcotest.(check bool) "digests were actually checked" true (r.Rec.Replay.digests_checked > 0);
        Alcotest.(check bool)
          "completions were actually checked" true
          (r.Rec.Replay.completions_checked > 0));
    tc "perturbed replay diverges at the first post-perturbation digest" (fun () ->
        (* cadence 1 pins the first divergence to a single epoch *)
        let trace = record_mixed ~digest_every:1 () in
        let pt = U.Units.us 730.0 in
        let expected_epoch =
          let rec first = function
            | Rec.Trace.Digest d :: _ when d.Rec.Trace.d_at >= pt -> d.Rec.Trace.d_epoch
            | _ :: rest -> first rest
            | [] -> Alcotest.fail "no digest after the perturbation point"
          in
          first trace.Rec.Trace.lines
        in
        let perturb fab = function
          | f :: _ -> E.Fabric.set_flow_limits fab f ~weight:(f.E.Flow.weight *. 4.0) ()
          | [] -> Alcotest.fail "no running flows at the perturbation point"
        in
        let r = replay_exn ~perturb:(pt, perturb) trace in
        Alcotest.(check bool) "perturbation detected" false (Rec.Replay.ok r);
        (match r.Rec.Replay.first_divergence with
        | None -> Alcotest.fail "report not ok but no first divergence"
        | Some d ->
          Alcotest.(check int) "first divergence epoch" expected_epoch d.Rec.Replay.epoch;
          Alcotest.(check bool)
            "divergence not before the perturbation" true
            (d.Rec.Replay.at >= pt)));
    tc "drill-down names the first divergent scan register" (fun () ->
        let trace = record_mixed ~digest_every:1 () in
        let pt = U.Units.us 730.0 in
        let perturb fab = function
          | f :: _ -> E.Fabric.set_flow_limits fab f ~weight:(f.E.Flow.weight *. 4.0) ()
          | [] -> Alcotest.fail "no running flows at the perturbation point"
        in
        let reference =
          match Rec.Replay.scan_reference trace with
          | Ok r -> r
          | Error e -> Alcotest.fail ("scan_reference refused the trace: " ^ e)
        in
        Alcotest.(check bool) "reference chain non-empty" true (reference <> []);
        let r = replay_exn ~perturb:(pt, perturb) ~reference trace in
        Alcotest.(check bool) "perturbation detected" false (Rec.Replay.ok r);
        match r.Rec.Replay.first_divergence with
        | None -> Alcotest.fail "report not ok but no first divergence"
        | Some d -> (
          match d.Rec.Replay.register with
          | None -> Alcotest.fail "digest divergence carried no register drill-down"
          | Some reg ->
            (* the report names a register path with both values;
               quadrupling a weight must surface in the rate plane or
               its downstream byte counters, all slash paths *)
            Alcotest.(check bool)
              "names a register path"
              true
              (String.contains reg '/');
            let rendered = Format.asprintf "%a" Rec.Replay.pp_report r in
            let contains s sub =
              let n = String.length s and m = String.length sub in
              let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
              go 0
            in
            Alcotest.(check bool)
              "report prints the drill-down" true
              (contains rendered "first divergent register")));
    tc "clean replay against its own scan reference stays clean" (fun () ->
        let trace = record_mixed ~digest_every:2 () in
        let reference =
          match Rec.Replay.scan_reference trace with
          | Ok r -> r
          | Error e -> Alcotest.fail ("scan_reference refused the trace: " ^ e)
        in
        let r = replay_exn ~reference trace in
        if not (Rec.Replay.ok r) then
          Alcotest.fail (Format.asprintf "%a" Rec.Replay.pp_report r));
    tc "unperturbed digests before the perturbation point all match" (fun () ->
        let trace = record_mixed ~digest_every:1 () in
        let pt = U.Units.us 730.0 in
        let before =
          List.length
            (List.filter
               (function Rec.Trace.Digest d -> d.Rec.Trace.d_at < pt | _ -> false)
               trace.Rec.Trace.lines)
        in
        let perturb fab = function
          | f :: _ -> E.Fabric.set_flow_limits fab f ~weight:(f.E.Flow.weight *. 4.0) ()
          | [] -> ()
        in
        let r = replay_exn ~perturb:(pt, perturb) trace in
        Alcotest.(check bool)
          "all pre-perturbation digests were consumed cleanly" true
          (r.Rec.Replay.digests_checked >= before));
    tc "attach refuses a fabric with live flows" (fun () ->
        let topo, _sim, fab = fresh () in
        ignore (E.Fabric.start_flow fab ~tenant:1 ~path:(route topo "ext" "socket0")
                  ~size:E.Flow.Unbounded ());
        match
          Rec.Recorder.attach ~sink:(fun _ -> ()) fab
        with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "attach accepted a mid-flight fabric");
    tc "invariant checker passes on a healthy loaded fabric" (fun () ->
        let topo, sim, fab = fresh () in
        ignore (E.Fabric.start_flow fab ~tenant:1 ~path:(route topo "ext" "socket0")
                  ~size:E.Flow.Unbounded ());
        ignore (E.Fabric.start_flow fab ~tenant:2 ~path:(route topo "gpu0" "ssd0")
                  ~size:(E.Flow.Bytes 8e6) ());
        run_for sim (U.Units.us 500.0);
        Alcotest.(check (list string)) "no failures" [] (Rec.Replay.check_invariants fab));
  ]

(* {1 Property: arbitrary command sequences replay exactly} *)

type cmd =
  | Start of int * float option * int * float
  | Stop of int
  | Limits of int * float
  | Fault of int * float
  | Clear of int
  | Clear_all
  | Flap of int

let pp_cmd = function
  | Start (r, sz, tn, dem) ->
    Printf.sprintf "Start(route=%d,size=%s,tenant=%d,demand=%.3g)" r
      (match sz with Some b -> Printf.sprintf "%.3g" b | None -> "unbounded")
      tn dem
  | Stop i -> Printf.sprintf "Stop %d" i
  | Limits (i, w) -> Printf.sprintf "Limits(%d,w=%.3g)" i w
  | Fault (l, f) -> Printf.sprintf "Fault(%d,%.2f)" l f
  | Clear l -> Printf.sprintf "Clear %d" l
  | Clear_all -> "ClearAll"
  | Flap l -> Printf.sprintf "Flap %d" l

let gen_cmds =
  QCheck.Gen.(
    let cmd =
      frequency
        [
          ( 5,
            map
              (fun ((r, sz), (tn, dem)) -> Start (r, sz, tn, dem))
              (pair
                 (pair (int_range 0 5) (opt (float_range 2e5 4e6)))
                 (pair (int_range 1 4) (float_range 1e9 1.2e10))) );
          (2, map (fun i -> Stop i) (int_range 0 40));
          (2, map2 (fun i w -> Limits (i, w)) (int_range 0 40) (float_range 0.5 4.0));
          (2, map2 (fun l f -> Fault (l, f)) (int_range 0 40) (float_range 0.05 0.9));
          (1, map (fun l -> Clear l) (int_range 0 40));
          (1, return Clear_all);
          (1, map (fun l -> Flap l) (int_range 0 40));
        ]
    in
    list_size (int_range 4 32) cmd)

let arb_cmds = QCheck.make ~print:QCheck.Print.(list (fun c -> pp_cmd c)) gen_cmds

(* The command spacing and the telemetry cadence collide at every third
   sample on purpose: equal-time command/observation pairs are exactly
   where replay ordering could slip. *)
let cmd_spacing = U.Units.us 100.0
let sample_period = U.Units.us 300.0

let watched_links = [ (0, T.Link.Fwd); (0, T.Link.Rev); (1, T.Link.Fwd) ]

let attach_sampler sim fab store ~until =
  E.Sim.every sim ~period:sample_period ~until (fun s ->
      List.iter
        (fun (l, dir) ->
          let series =
            Printf.sprintf "link.%d.%s.bytes" l
              (match dir with T.Link.Fwd -> "fwd" | T.Link.Rev -> "rev")
          in
          Mon.Telemetry.record store ~series ~at:(E.Sim.now s) (E.Fabric.link_bytes fab l dir))
        watched_links)

let alloc_snapshot fab =
  E.Fabric.refresh fab;
  List.sort compare
    (List.map (fun (f : E.Flow.t) -> (f.E.Flow.id, f.E.Flow.rate)) (E.Fabric.active_flows fab))

let run_property cmds =
  let topo, sim, fab = fresh ~seed:23 () in
  let routes =
    Array.of_list
      (List.map
         (fun (a, b) -> route topo a b)
         [
           ("ext", "socket0");
           ("nic0", "socket0");
           ("gpu0", "ssd0");
           ("socket0", "socket1");
           ("gpu0", "ext");
           ("nic1", "socket1");
         ])
  in
  let pcie =
    List.filter
      (fun (l : T.Link.t) -> match l.T.Link.kind with T.Link.Pcie _ -> true | _ -> false)
      (T.Topology.links topo)
    |> Array.of_list
  in
  let total = (float_of_int (List.length cmds) +. 4.0) *. cmd_spacing in
  let buf = Buffer.create 16384 in
  let rcd =
    Rec.Recorder.attach ~digest_every:2 ~label:"prop" ~seed:23
      ~sink:(Rec.Recorder.buffer_sink buf) fab
  in
  let telemetry = Mon.Telemetry.create ~capacity_per_series:64 () in
  attach_sampler sim fab telemetry ~until:total;
  let flows = ref [||] in
  let nth_flow i =
    if Array.length !flows = 0 then None
    else
      let f = !flows.(i mod Array.length !flows) in
      if f.E.Flow.state = E.Flow.Running then Some f else None
  in
  let link i = pcie.(i mod Array.length pcie).T.Link.id in
  List.iteri
    (fun i c ->
      E.Sim.schedule_at sim
        (float_of_int (i + 1) *. cmd_spacing)
        (fun _ ->
          match c with
          | Start (r, sz, tenant, demand) ->
            let f =
              E.Fabric.start_flow fab ~tenant ~demand
                ~path:routes.(r mod Array.length routes)
                ~size:(match sz with Some b -> E.Flow.Bytes b | None -> E.Flow.Unbounded)
                ()
            in
            flows := Array.append !flows [| f |]
          | Stop i -> Option.iter (fun f -> E.Fabric.stop_flow fab f) (nth_flow i)
          | Limits (i, w) ->
            Option.iter (fun f -> E.Fabric.set_flow_limits fab f ~weight:w ()) (nth_flow i)
          | Fault (l, factor) ->
            E.Fabric.inject_fault fab (link l) (E.Fault.degrade ~capacity_factor:factor ())
          | Clear l -> E.Fabric.clear_fault fab (link l)
          | Clear_all -> E.Fabric.clear_all_faults fab
          | Flap l ->
            E.Fabric.flap_link fab (link l)
              (E.Fault.degrade ~capacity_factor:0.2 ())
              ~period:(U.Units.us 150.0) ~toggles:2))
    cmds;
  E.Sim.run ~until:total sim;
  Rec.Recorder.stop rcd;
  let recorded_alloc = alloc_snapshot fab in
  let recorded_csv = Mon.Telemetry.to_csv telemetry in
  let trace = parse_buf buf in
  let replayed_fab = ref None in
  let replay_telemetry = Mon.Telemetry.create ~capacity_per_series:64 () in
  let setup sim fab =
    replayed_fab := Some fab;
    attach_sampler sim fab replay_telemetry ~until:total
  in
  let report = replay_exn ~setup trace in
  if not (Rec.Replay.ok report) then
    QCheck.Test.fail_reportf "replay diverged:@.%a" Rec.Replay.pp_report report;
  let replayed_alloc =
    match !replayed_fab with
    | Some fab -> alloc_snapshot fab
    | None -> QCheck.Test.fail_report "replay never ran setup"
  in
  if recorded_alloc <> replayed_alloc then
    QCheck.Test.fail_reportf "final allocations differ: recorded %d flow(s), replayed %d"
      (List.length recorded_alloc) (List.length replayed_alloc);
  let replayed_csv = Mon.Telemetry.to_csv replay_telemetry in
  if recorded_csv <> replayed_csv then
    QCheck.Test.fail_report "telemetry csv differs between record and replay";
  true

let property_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"random command sequences record and replay bit-for-bit" ~count:25
         arb_cmds run_property);
  ]

let suites =
  [
    ("record.codec", codec_tests);
    ("record.replay", replay_tests);
    ("record.property", property_tests);
  ]
