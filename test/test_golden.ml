(* Golden-trace regression suite.

   Each scenario in the golden store is re-recorded from scratch under
   its fixed seed and compared — line count, final state digest,
   whole-trace fingerprint — against the compact identity committed in
   test/golden/<name>.json. Any engine change that alters scheduling,
   allocation or byte accounting shows up here as a fingerprint drift
   with a field-by-field diff. The fresh trace is then replayed to
   prove it is self-conformant, so a stale golden file can be
   distinguished from a broken recorder.

   After an intentional behaviour change, regenerate with

     dune exec bin/ihnetctl.exe -- record --regen-golden test/golden

   and commit the rewritten json files. *)

module Rec = Ihnet_record

let tc name f = Alcotest.test_case name `Quick f

let golden_file scenario = Filename.concat "golden" (Rec.Golden.name scenario ^ ".json")

let scenario_test sc =
  tc (Rec.Golden.name sc) (fun () ->
      let expected =
        match Rec.Golden.load_fingerprint (golden_file sc) with
        | Ok f -> f
        | Error e -> Alcotest.fail ("golden store unreadable: " ^ e)
      in
      let trace = Rec.Golden.record sc in
      let actual = Rec.Golden.fingerprint_of sc trace in
      (match Rec.Golden.diff ~expected ~actual with
      | [] -> ()
      | diffs ->
        Alcotest.fail
          (String.concat "\n"
             (Printf.sprintf
                "golden fingerprint drift for %S — if the engine change is intentional, \
                 regenerate with `ihnetctl record --regen-golden test/golden`:"
                (Rec.Golden.name sc)
             :: diffs)));
      match Rec.Replay.run trace with
      | Error e -> Alcotest.fail ("fresh golden trace not replayable: " ^ e)
      | Ok r ->
        if not (Rec.Replay.ok r) then
          Alcotest.fail (Format.asprintf "fresh golden trace diverged:@.%a" Rec.Replay.pp_report r);
        Alcotest.(check bool) "digests checked" true (r.Rec.Replay.digests_checked > 0))

let store_tests =
  [
    tc "store covers exactly the published scenarios" (fun () ->
        Alcotest.(check (list string))
          "scenario names" [ "e1"; "e5"; "e17" ]
          (List.map Rec.Golden.name Rec.Golden.scenarios));
    tc "fingerprints round-trip through their json encoding" (fun () ->
        List.iter
          (fun sc ->
            match Rec.Golden.load_fingerprint (golden_file sc) with
            | Error e -> Alcotest.fail e
            | Ok f -> (
              match Rec.Golden.fingerprint_of_string (Rec.Golden.fingerprint_to_string f) with
              | Ok f' ->
                if f' <> f then Alcotest.fail ("fingerprint changed in transit: " ^ Rec.Golden.name sc)
              | Error e -> Alcotest.fail e))
          Rec.Golden.scenarios);
  ]

let suites =
  [
    ("golden.store", store_tests);
    ("golden.scenarios", List.map scenario_test Rec.Golden.scenarios);
  ]
