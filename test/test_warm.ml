(* Warm-started solver: differential properties and invalidation
   units. The warm path must be BIT-identical to the cold path — not
   merely close — because the fabric's determinism contract digests
   the output rates (MODEL.md §12–13). *)

module E = Ihnet_engine

let prop name ?(count = 200) gen f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count gen f)

let bits_eq (a : float) (b : float) =
  Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)

(* {1 Generators} *)

(* One incremental update, interpreted modulo the live demand /
   resource counts at application time. *)
type update =
  | Set_weight of int * float
  | Set_floor of int * float
  | Set_cap of int * float (* infinity encoded as 0.0 *)
  | Set_usage of int * (int * float) list (* structural *)
  | Set_capacity of int * float
  | Touch of int (* re-store the identical record: must be a no-op *)

let gen_usage nr =
  QCheck.Gen.(
    list_size (int_range 1 5) (pair (int_range 0 (nr - 1)) (float_range 0.5 2.0))
    >>= fun usage -> return (List.sort_uniq (fun (a, _) (b, _) -> compare a b) usage))

let gen_update nr =
  QCheck.Gen.(
    oneof
      [
        map2 (fun i w -> Set_weight (i, w)) (int_range 0 1000) (float_range 0.1 8.0);
        map2 (fun i f -> Set_floor (i, f)) (int_range 0 1000) (float_range 0.0 20.0);
        map2
          (fun i c -> Set_cap (i, c))
          (int_range 0 1000)
          (oneof [ return 0.0; float_range 0.1 50.0 ]);
        map2 (fun i u -> Set_usage (i, u)) (int_range 0 1000) (gen_usage nr);
        map2 (fun r v -> Set_capacity (r, v)) (int_range 0 1000) (float_range 5.0 500.0);
        map (fun i -> Touch i) (int_range 0 1000);
      ])

let gen_demand nr =
  QCheck.Gen.(
    float_range 0.1 8.0 >>= fun weight ->
    float_range 0.0 20.0 >>= fun floor ->
    oneof [ return infinity; float_range 0.1 50.0 ] >>= fun cap ->
    gen_usage nr >>= fun usage -> return { E.Fairshare.weight; floor; cap; usage })

(* A base case plus a few epochs, each a batch of updates followed by
   a solve. *)
let gen_case =
  QCheck.Gen.(
    int_range 1 8 >>= fun nr ->
    array_size (return nr) (float_range 5.0 500.0) >>= fun caps ->
    array_size (int_range 1 25) (gen_demand nr) >>= fun demands ->
    list_size (int_range 1 6) (list_size (int_range 0 5) (gen_update nr)) >>= fun epochs ->
    return (caps, demands, epochs))

let print_case (caps, demands, epochs) =
  let b = Buffer.create 256 in
  Buffer.add_string b "caps=[";
  Array.iter (fun c -> Buffer.add_string b (Printf.sprintf "%h;" c)) caps;
  Buffer.add_string b "] demands=[";
  Array.iter
    (fun (d : E.Fairshare.demand) ->
      Buffer.add_string b
        (Printf.sprintf "{w=%h f=%h c=%h u=[%s]};" d.weight d.floor d.cap
           (String.concat ";" (List.map (fun (r, co) -> Printf.sprintf "%d:%h" r co) d.usage))))
    demands;
  Buffer.add_string b (Printf.sprintf "] epochs=%d upd=[" (List.length epochs));
  List.iter
    (fun us ->
      List.iter
        (fun u ->
          Buffer.add_string b
            (match u with
            | Set_weight (i, w) -> Printf.sprintf "w%d=%h;" i w
            | Set_floor (i, f) -> Printf.sprintf "f%d=%h;" i f
            | Set_cap (i, c) -> Printf.sprintf "c%d=%h;" i c
            | Set_usage (i, _) -> Printf.sprintf "u%d;" i
            | Set_capacity (r, v) -> Printf.sprintf "C%d=%h;" r v
            | Touch i -> Printf.sprintf "t%d;" i))
        us;
      Buffer.add_string b "|")
    epochs;
  Buffer.add_string b "]";
  Buffer.contents b

(* Apply one update to both the warm state and the mirror the cold
   solver sees; they must stay in lockstep. *)
let apply st caps (dems : E.Fairshare.demand array ref) u =
  let n = Array.length !dems and nr = Array.length caps in
  match u with
  | Set_weight (i, w) ->
    let i = i mod n in
    let d = { !dems.(i) with E.Fairshare.weight = w } in
    !dems.(i) <- d;
    E.Fairshare.set_demand st i d
  | Set_floor (i, f) ->
    let i = i mod n in
    let d = { !dems.(i) with E.Fairshare.floor = f } in
    !dems.(i) <- d;
    E.Fairshare.set_demand st i d
  | Set_cap (i, c) ->
    let i = i mod n in
    let c = if c = 0.0 then infinity else c in
    let d = { !dems.(i) with E.Fairshare.cap = c } in
    !dems.(i) <- d;
    E.Fairshare.set_demand st i d
  | Set_usage (i, u) ->
    let i = i mod n in
    let d = { !dems.(i) with E.Fairshare.usage = u } in
    !dems.(i) <- d;
    E.Fairshare.set_demand st i d
  | Set_capacity (r, v) ->
    let r = r mod nr in
    caps.(r) <- v;
    E.Fairshare.set_capacity st r v
  | Touch i ->
    let i = i mod n in
    E.Fairshare.set_demand st i !dems.(i)

let warm_props =
  [
    (* The tentpole's correctness gate: arbitrary update sequences
       through the warm state agree bitwise with a from-scratch cold
       solve, and the cold solve agrees with the round-based oracle to
       1e-6 — so warm ≡ cold ≡ reference. *)
    prop "warm ≡ cold (bitwise) ≡ reference across random update sequences" ~count:1000
      (QCheck.make ~print:print_case gen_case)
      (fun (caps0, demands0, epochs) ->
        let caps = Array.copy caps0 in
        let dems = ref (Array.map Fun.id demands0) in
        let st = E.Fairshare.make_state ~capacities:caps demands0 in
        List.for_all
          (fun updates ->
            List.iter (apply st caps dems) updates;
            let warm = E.Fairshare.allocate_warm st in
            let cold = E.Fairshare.allocate ~capacities:caps !dems in
            let oracle = E.Fairshare.allocate_reference ~capacities:caps !dems in
            Array.length warm = Array.length cold
            && Array.for_all2 bits_eq warm cold
            && Array.for_all2
                 (fun a b ->
                   Float.abs (a -. b)
                   <= 1e-6 *. Float.max 1.0 (Float.max (Float.abs a) (Float.abs b)))
                 cold oracle)
          epochs);
    prop "reset diffs against the live vector and stays bitwise-cold" ~count:300
      (QCheck.make ~print:print_case gen_case)
      (fun (caps, demands, _) ->
        let st = E.Fairshare.make_state ~capacities:caps demands in
        let r1 = E.Fairshare.allocate_warm st in
        (* re-enter with a structurally identical but freshly boxed
           demand vector: must be answered from cache *)
        E.Fairshare.reset st (Array.map (fun d -> { d with E.Fairshare.weight = d.E.Fairshare.weight }) demands);
        let r2 = E.Fairshare.allocate_warm st in
        let stats = E.Fairshare.stats st in
        Array.for_all2 bits_eq r1 r2
        && stats.E.Fairshare.unchanged = 1
        && Array.for_all2 bits_eq r1 (E.Fairshare.allocate ~capacities:caps demands));
  ]

(* {1 Invalidation units} *)

let d w f c u = { E.Fairshare.weight = w; floor = f; cap = c; usage = u }

let check_vs_cold st caps dems =
  let warm = E.Fairshare.allocate_warm st in
  let cold = E.Fairshare.allocate ~capacities:caps dems in
  Alcotest.(check bool) "warm matches cold bitwise" true (Array.for_all2 bits_eq warm cold)

let test_invalidation_fires () =
  let caps = [| 100.0; 50.0; 80.0 |] in
  let dems =
    [|
      d 1.0 10.0 infinity [ (0, 1.0); (1, 1.0) ];
      d 2.0 0.0 30.0 [ (0, 1.0); (2, 1.2) ];
      d 1.0 5.0 infinity [ (1, 1.0); (2, 1.0) ];
    |]
  in
  let st = E.Fairshare.make_state ~capacities:caps dems in
  check_vs_cold st caps dems;
  let s1 = E.Fairshare.stats st in
  Alcotest.(check int) "first solve is a full rebuild" 1 s1.E.Fairshare.full_rebuilds;
  (* clean re-solve: answered from cache *)
  check_vs_cold st caps dems;
  Alcotest.(check int) "clean re-solve is a no-op" 1 (E.Fairshare.stats st).E.Fairshare.unchanged;
  (* capacity perturbation must invalidate and take the incremental path *)
  caps.(1) <- 40.0;
  E.Fairshare.set_capacity st 1 40.0;
  check_vs_cold st caps dems;
  Alcotest.(check int) "capacity change takes the incremental path" 1
    (E.Fairshare.stats st).E.Fairshare.incremental;
  (* floor perturbation (re-floored flow) *)
  dems.(0) <- d 1.0 60.0 infinity [ (0, 1.0); (1, 1.0) ];
  E.Fairshare.set_demand st 0 dems.(0);
  check_vs_cold st caps dems;
  Alcotest.(check int) "floor change takes the incremental path" 2
    (E.Fairshare.stats st).E.Fairshare.incremental;
  (* cap perturbation *)
  dems.(1) <- d 2.0 0.0 10.0 [ (0, 1.0); (2, 1.2) ];
  E.Fairshare.set_demand st 1 dems.(1);
  check_vs_cold st caps dems;
  Alcotest.(check int) "cap change takes the incremental path" 3
    (E.Fairshare.stats st).E.Fairshare.incremental;
  (* usage change is structural: full rebuild *)
  dems.(2) <- d 1.0 5.0 infinity [ (0, 1.0); (1, 1.0); (2, 1.0) ];
  E.Fairshare.set_demand st 2 dems.(2);
  check_vs_cold st caps dems;
  let s = E.Fairshare.stats st in
  Alcotest.(check int) "usage change forces a full rebuild" 2 s.E.Fairshare.full_rebuilds;
  Alcotest.(check int) "no spurious extra solves" 6 s.E.Fairshare.solves

let test_noop_updates_stay_clean () =
  let caps = [| 100.0 |] in
  let dems = [| d 1.0 0.0 infinity [ (0, 1.0) ]; d 2.0 5.0 40.0 [ (0, 1.3) ] |] in
  let st = E.Fairshare.make_state ~capacities:caps dems in
  ignore (E.Fairshare.allocate_warm st);
  (* identical records, equal-valued fresh records, equal capacity
     stores: none of these may dirty the state *)
  E.Fairshare.set_demand st 0 dems.(0);
  E.Fairshare.set_demand st 1 (d 2.0 5.0 40.0 [ (0, 1.3) ]);
  E.Fairshare.set_capacity st 0 100.0;
  ignore (E.Fairshare.allocate_warm st);
  Alcotest.(check int) "no-op updates answered from cache" 1
    (E.Fairshare.stats st).E.Fairshare.unchanged

(* Satellite: [validate] must raise [Invalid_argument] — a real
   raise, not [assert], so it survives [-noassert] builds. This test
   failed before the fix: the old asserts raised [Assert_failure]. *)
let test_validate_raises () =
  let caps = [| 100.0 |] in
  let bad_weight = [| d 0.0 0.0 infinity [ (0, 1.0) ] |] in
  let bad_floor = [| d 1.0 (-1.0) infinity [ (0, 1.0) ] |] in
  let bad_cap = [| d 1.0 0.0 (-2.0) [ (0, 1.0) ] |] in
  let bad_res = [| d 1.0 0.0 infinity [ (7, 1.0) ] |] in
  let bad_coef = [| d 1.0 0.0 infinity [ (0, 0.0) ] |] in
  let nan_weight = [| d Float.nan 0.0 infinity [ (0, 1.0) ] |] in
  let expect_invalid name f =
    match f () with
    | exception Invalid_argument _ -> ()
    | exception e ->
      Alcotest.failf "%s: expected Invalid_argument, got %s" name (Printexc.to_string e)
    | _ -> Alcotest.failf "%s: expected Invalid_argument, got a result" name
  in
  List.iter
    (fun (name, dems) ->
      expect_invalid ("validate " ^ name) (fun () ->
          E.Fairshare.validate ~capacities:caps dems);
      expect_invalid ("allocate " ^ name) (fun () ->
          E.Fairshare.allocate ~capacities:caps dems);
      expect_invalid ("allocate_warm " ^ name) (fun () ->
          E.Fairshare.allocate_warm (E.Fairshare.make_state ~capacities:caps dems)))
    [
      ("weight=0", bad_weight);
      ("floor<0", bad_floor);
      ("cap<0", bad_cap);
      ("resource out of range", bad_res);
      ("coefficient=0", bad_coef);
      ("weight=nan", nan_weight);
    ]

let unit_tests =
  [
    Alcotest.test_case "invalidation fires on capacity/floor/cap/usage perturbations" `Quick
      test_invalidation_fires;
    Alcotest.test_case "no-op updates are answered from the cached solution" `Quick
      test_noop_updates_stay_clean;
    Alcotest.test_case "validate raises Invalid_argument (survives -noassert)" `Quick
      test_validate_raises;
  ]

(* {1 Fabric level: the component-result memo and its invalidation}

   Steady flow churn must hit the memo; anything that changes a
   component's inputs — a link fault (capacities), a limits update (a
   demand record), a host-config swap (the cache model) — must miss.
   The hit/miss counters are the observable. *)

module T = Ihnet_topology

let fab_path topo a b =
  let dev n =
    match T.Topology.device_by_name topo n with
    | Some d -> d.T.Device.id
    | None -> Alcotest.failf "no device %s" n
  in
  match T.Routing.shortest_path topo (dev a) (dev b) with
  | Some p -> p
  | None -> Alcotest.failf "no path %s->%s" a b

(* A two-socket fabric carrying 24 background flows on gpu0->nic0,
   plus the path and a faultable mid-path link. *)
let loaded_fabric ?(warm = true) () =
  let topo = T.Builder.two_socket_server () in
  let sim = E.Sim.create () in
  let fab = E.Fabric.create ~warm sim topo in
  let p = fab_path topo "gpu0" "nic0" in
  E.Fabric.batch fab (fun () ->
      for i = 1 to 24 do
        ignore
          (E.Fabric.start_flow fab ~tenant:(1 + (i mod 4))
             ~weight:(1.0 +. float_of_int (i mod 3))
             ~path:p ~size:E.Flow.Unbounded ())
      done);
  (fab, p)

let churn fab p =
  let f = E.Fabric.start_flow fab ~tenant:99 ~path:p ~size:E.Flow.Unbounded () in
  E.Fabric.stop_flow fab f

let test_fabric_steady_churn_hits () =
  let fab, p = loaded_fabric () in
  Alcotest.(check bool) "warm enabled" true (E.Fabric.warm_enabled fab);
  (* first lap populates the memo (both alternation values) *)
  churn fab p;
  let h0 = E.Fabric.warm_hits fab and m0 = E.Fabric.warm_misses fab in
  for _ = 1 to 5 do
    churn fab p
  done;
  Alcotest.(check int) "steady churn misses nothing" m0 (E.Fabric.warm_misses fab);
  Alcotest.(check bool) "steady churn hits the memo" true (E.Fabric.warm_hits fab >= h0 + 10)

let test_fabric_invalidation () =
  let fab, p = loaded_fabric () in
  churn fab p;
  churn fab p;
  let expect_miss label act =
    let m0 = E.Fabric.warm_misses fab in
    act ();
    if E.Fabric.warm_misses fab <= m0 then
      Alcotest.failf "%s did not invalidate the memo (misses stuck at %d)" label m0
  in
  (* capacities changed -> the cached caps row no longer matches *)
  let mid = List.nth p.T.Path.hops (List.length p.T.Path.hops / 2) in
  expect_miss "inject_fault" (fun () ->
      E.Fabric.inject_fault fab mid.T.Path.link.T.Link.id (E.Fault.degrade ~capacity_factor:0.5 ()));
  (* clearing restores the pre-fault capacities, which the bucket still
     holds — the memo is keyed by values, not invalidated by events, so
     returning to a previously-seen state is a legitimate hit *)
  let h0 = E.Fabric.warm_hits fab and m1 = E.Fabric.warm_misses fab in
  E.Fabric.clear_fault fab mid.T.Path.link.T.Link.id;
  Alcotest.(check int) "clear_fault replays the pre-fault memo" m1 (E.Fabric.warm_misses fab);
  Alcotest.(check bool) "clear_fault hits" true (E.Fabric.warm_hits fab > h0);
  (* a never-seen degradation level must miss again *)
  expect_miss "inject_fault (new level)" (fun () ->
      E.Fabric.inject_fault fab mid.T.Path.link.T.Link.id (E.Fault.degrade ~capacity_factor:0.7 ()));
  E.Fabric.clear_fault fab mid.T.Path.link.T.Link.id;
  (* a demand record changed -> the dems row no longer matches *)
  (match E.Fabric.active_flows fab with
  | f :: _ ->
    expect_miss "set_flow_limits" (fun () ->
        E.Fabric.set_flow_limits fab f ~weight:9.5 ())
  | [] -> Alcotest.fail "no active flows");
  (* config swap resets the whole cache generation *)
  expect_miss "set_config" (fun () ->
      E.Fabric.set_config fab
        { T.Hostconfig.default with T.Hostconfig.ddio = T.Hostconfig.Ddio_off });
  (* and after each upset, steady churn re-converges to pure hits *)
  churn fab p;
  let m0 = E.Fabric.warm_misses fab in
  churn fab p;
  Alcotest.(check int) "re-converged to hits" m0 (E.Fabric.warm_misses fab)

let test_fabric_cold_counters_stay_zero () =
  let fab, p = loaded_fabric ~warm:false () in
  Alcotest.(check bool) "warm disabled" false (E.Fabric.warm_enabled fab);
  for _ = 1 to 3 do
    churn fab p
  done;
  Alcotest.(check int) "no hits" 0 (E.Fabric.warm_hits fab);
  Alcotest.(check int) "no misses" 0 (E.Fabric.warm_misses fab)

(* Same seed, same scenario, warm on vs off: every flow rate must be
   bit-identical (the memo and solver warm-start may only change how
   fast rates are computed, never their bits). *)
let test_fabric_warm_cold_rates_bitwise () =
  let run warm =
    let fab, p = loaded_fabric ~warm () in
    churn fab p;
    let mid = List.nth p.T.Path.hops (List.length p.T.Path.hops / 2) in
    E.Fabric.inject_fault fab mid.T.Path.link.T.Link.id (E.Fault.degrade ~capacity_factor:0.25 ());
    churn fab p;
    E.Fabric.clear_fault fab mid.T.Path.link.T.Link.id;
    churn fab p;
    E.Fabric.active_flows fab
    |> List.map (fun f -> (f.E.Flow.id, f.E.Flow.rate))
    |> List.sort compare
  in
  let w = run true and c = run false in
  Alcotest.(check int) "same flow count" (List.length c) (List.length w);
  List.iter2
    (fun (wi, wr) (ci, cr) ->
      Alcotest.(check int) "same flow id" ci wi;
      if not (bits_eq wr cr) then
        Alcotest.failf "flow %d: warm rate %h <> cold rate %h" wi wr cr)
    w c

let fabric_tests =
  [
    Alcotest.test_case "steady churn is answered from the memo" `Quick
      test_fabric_steady_churn_hits;
    Alcotest.test_case "faults, limit updates and config swaps invalidate" `Quick
      test_fabric_invalidation;
    Alcotest.test_case "disabled warm-start keeps counters at zero" `Quick
      test_fabric_cold_counters_stay_zero;
    Alcotest.test_case "warm and cold fabrics produce bit-identical rates" `Quick
      test_fabric_warm_cold_rates_bitwise;
  ]

let suites =
  [ ("warm.props", warm_props); ("warm.units", unit_tests); ("warm.fabric", fabric_tests) ]
