(* Regression tests for the arbiter lifecycle bugs (placement removal
   by identity, shim restart tick chains, floor pruning on
   self-completion) and behavior tests for the remediation supervisor's
   detect -> diagnose -> act loop. *)

open Ihnet_manager
module E = Ihnet_engine
module T = Ihnet_topology
module U = Ihnet_util

let tc name f = Alcotest.test_case name `Quick f

let prop name ?(count = 100) gen f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count gen f)

let make_mgr () =
  let topo = T.Builder.two_socket_server () in
  let sim = E.Sim.create () in
  let fab = E.Fabric.create sim topo in
  (sim, fab, Manager.create fab ())

let submit_one mgr intent =
  match Manager.submit mgr intent with
  | Ok [ p ] -> p
  | Ok _ -> Alcotest.fail "expected one placement"
  | Error e -> Alcotest.fail (Mgr_error.to_string e)

let run_for sim d = E.Sim.run ~until:(E.Sim.now sim +. d) sim

let start_on fab (p : Placement.t) ?(demand = infinity) ?(size = E.Flow.Unbounded) () =
  E.Fabric.start_flow fab ~tenant:p.Placement.tenant ~demand ~path:p.Placement.path ~size ()

let tenant_rate fab ~tenant =
  E.Fabric.refresh fab;
  List.fold_left
    (fun acc (f : E.Flow.t) ->
      if f.E.Flow.tenant = tenant && f.E.Flow.cls = E.Flow.Payload then acc +. f.E.Flow.rate
      else acc)
    0.0 (E.Fabric.active_flows fab)

let hop_link (p : Placement.t) n =
  (List.nth p.Placement.path.T.Path.hops n).T.Path.link.T.Link.id

(* {1 Arbiter lifecycle regressions} *)

let arbiter_regressions =
  [
    tc "remove_placement matches by stable id, not physical equality" (fun () ->
        (* the old physical-equality test silently kept a placement
           registered when the caller held a structural copy — the
           arbiter went on enforcing floors for a revoked guarantee *)
        let _, fab, mgr = make_mgr () in
        let arb = Manager.arbiter mgr in
        let p = submit_one mgr (Intent.pipe ~tenant:1 ~src:"ext" ~dst:"socket0" ~rate:2e9) in
        let f = start_on fab p () in
        Alcotest.(check bool) "attached" true (Manager.attach mgr f);
        Alcotest.(check bool) "floor installed" true (Arbiter.guaranteed_of arb f > 0.0);
        let copy = { p with Placement.attached = p.Placement.attached } in
        Arbiter.remove_placement arb copy;
        Alcotest.(check int) "placement gone" 0 (List.length (Arbiter.placements arb));
        Alcotest.(check (list (pair int (float 0.0)))) "floors released" []
          (Arbiter.installed_floors arb));
    tc "stop_shim/start_shim leaves exactly one tick chain" (fun () ->
        (* the old tick closure only checked the boolean, so every
           stop/start pair added a concurrent chain, multiplying the
           enforcement rate *)
        let sim, fab, mgr = make_mgr () in
        let p = submit_one mgr (Intent.pipe ~tenant:1 ~src:"ext" ~dst:"socket0" ~rate:2e9) in
        let f = start_on fab p () in
        ignore (Manager.attach mgr f);
        Manager.start_shim mgr ~period:(U.Units.us 50.0);
        run_for sim (U.Units.ms 1.0);
        let d0 = Manager.decisions mgr in
        run_for sim (U.Units.ms 1.0);
        let per_ms = Manager.decisions mgr - d0 in
        for _ = 1 to 3 do
          Manager.stop_shim mgr;
          Manager.start_shim mgr ~period:(U.Units.us 50.0)
        done;
        let d1 = Manager.decisions mgr in
        run_for sim (U.Units.ms 1.0);
        let per_ms_after = Manager.decisions mgr - d1 in
        (* the three immediate first ticks of the restarts may add a few
           decisions, but a surviving duplicate chain would double+ the
           steady rate *)
        Alcotest.(check bool)
          (Printf.sprintf "steady enforcement rate (%d/ms before, %d/ms after)" per_ms
             per_ms_after)
          true
          (per_ms_after < 2 * per_ms));
    tc "self-completed flow's floor and attachment are pruned" (fun () ->
        let sim, fab, mgr = make_mgr () in
        let arb = Manager.arbiter mgr in
        let p = submit_one mgr (Intent.pipe ~tenant:1 ~src:"gpu0" ~dst:"socket0" ~rate:2e9) in
        let f = start_on fab p ~size:(E.Flow.Bytes 1e6) () in
        ignore (Manager.attach mgr f);
        Alcotest.(check bool) "floor while running" true (Arbiter.guaranteed_of arb f > 0.0);
        run_for sim (U.Units.ms 5.0);
        Alcotest.(check bool) "completed" true (f.E.Flow.state = E.Flow.Completed);
        Alcotest.(check (list (pair int (float 0.0)))) "no stale floor" []
          (Arbiter.installed_floors arb);
        Alcotest.(check int) "attachment pruned" 0 (List.length p.Placement.attached));
    tc "stopped flow's floor is pruned via the fabric event" (fun () ->
        let _, fab, mgr = make_mgr () in
        let arb = Manager.arbiter mgr in
        let p = submit_one mgr (Intent.pipe ~tenant:1 ~src:"gpu0" ~dst:"socket0" ~rate:2e9) in
        let f = start_on fab p () in
        ignore (Manager.attach mgr f);
        E.Fabric.stop_flow fab f;
        Alcotest.(check (list (pair int (float 0.0)))) "no stale floor" []
          (Arbiter.installed_floors arb));
  ]

(* {1 Floors-consistency property}

   Random attach/detach/complete/stop/restart-shim sequences must leave
   the floor table holding exactly the attached running flows. *)

let floors_consistent mgr =
  let arb = Manager.arbiter mgr in
  let floors = List.map fst (Arbiter.installed_floors arb) in
  let attached =
    List.concat_map
      (fun (p : Placement.t) ->
        List.filter_map
          (fun (f : E.Flow.t) ->
            if f.E.Flow.state = E.Flow.Running then Some f.E.Flow.id else None)
          p.Placement.attached)
      (Manager.placements mgr)
    |> List.sort_uniq compare
  in
  List.sort compare floors = attached

let arbiter_props =
  [
    prop "random flow churn keeps floors = attached running flows" ~count:60
      QCheck.(list_of_size Gen.(int_range 5 40) (int_range 0 99))
      (fun ops ->
        let sim, fab, mgr = make_mgr () in
        let p1 = submit_one mgr (Intent.pipe ~tenant:1 ~src:"ext" ~dst:"socket0" ~rate:4e9) in
        let p2 = submit_one mgr (Intent.pipe ~tenant:2 ~src:"gpu0" ~dst:"socket0" ~rate:2e9) in
        Manager.start_shim mgr ~period:(U.Units.us 50.0);
        let live = ref [] in
        List.iter
          (fun op ->
            (match op mod 6 with
            | 0 | 1 ->
              (* bounded flow: may self-complete during a later advance *)
              let p = if op mod 2 = 0 then p1 else p2 in
              let f =
                start_on fab p ~demand:6e9 ~size:(E.Flow.Bytes (float_of_int (1 + op) *. 5e4)) ()
              in
              ignore (Manager.attach mgr f);
              live := f :: !live
            | 2 -> (
              match !live with
              | f :: rest ->
                E.Fabric.stop_flow fab f;
                live := rest
              | [] -> ())
            | 3 -> (
              match !live with
              | f :: _ -> Manager.detach mgr f
              | [] -> ())
            | 4 ->
              Manager.stop_shim mgr;
              Manager.start_shim mgr ~period:(U.Units.us 50.0)
            | _ -> ());
            run_for sim (U.Units.us (float_of_int (10 + op)));
            live := List.filter (fun (f : E.Flow.t) -> f.E.Flow.state = E.Flow.Running) !live)
          ops;
        run_for sim (U.Units.ms 1.0);
        floors_consistent mgr);
  ]

(* {1 Remediation supervisor} *)

let sick = E.Fault.degrade ~capacity_factor:0.05 ()

let remediation_tests =
  [
    tc "announced fault with an alternate path recovers via re-place" (fun () ->
        let sim, fab, mgr = make_mgr () in
        let rem = Remediation.create mgr in
        Remediation.start rem;
        let p = submit_one mgr (Intent.pipe ~tenant:1 ~src:"ext" ~dst:"socket0" ~rate:10e9) in
        let f = start_on fab p ~demand:10e9 () in
        ignore (Manager.attach mgr f);
        run_for sim (U.Units.ms 1.0);
        let bad = hop_link p 1 in
        E.Fabric.inject_fault fab bad sick;
        run_for sim (U.Units.ms 10.0);
        (match Remediation.case_for rem bad with
        | None -> Alcotest.fail "no case opened"
        | Some c ->
          Alcotest.(check bool) "resolved" true (c.Remediation.status = Remediation.Resolved);
          Alcotest.(check bool) "escalated past re-arbitrate" true
            (c.Remediation.stage <> Remediation.Rearbitrate);
          Alcotest.(check bool) "recovery time recorded" true (c.Remediation.recovered_at <> None));
        Alcotest.(check bool) "placement moved off the sick link" true
          (not
             (List.exists
                (fun (h : T.Path.hop) -> h.T.Path.link.T.Link.id = bad)
                p.Placement.path.T.Path.hops));
        Alcotest.(check bool) "guarantee restored" true (tenant_rate fab ~tenant:1 >= 9.5e9));
    tc "no alternate path: floor degraded explicitly, restored on clear" (fun () ->
        let sim, fab, mgr = make_mgr () in
        let rem = Remediation.create mgr in
        Remediation.start rem;
        let p = submit_one mgr (Intent.pipe ~tenant:1 ~src:"gpu0" ~dst:"socket0" ~rate:10e9) in
        let f = start_on fab p ~demand:10e9 () in
        ignore (Manager.attach mgr f);
        run_for sim (U.Units.ms 1.0);
        let bad = hop_link p 1 in
        E.Fabric.inject_fault fab bad sick;
        run_for sim (U.Units.ms 20.0);
        Alcotest.(check bool) "floor explicitly degraded" true (p.Placement.floor_scale < 1.0);
        let report = Slo.check mgr in
        Alcotest.(check int) "no silent violation" 0 report.Slo.violations;
        Alcotest.(check int) "explicit degraded verdict" 1 report.Slo.degraded;
        E.Fabric.clear_fault fab bad;
        run_for sim (U.Units.ms 2.0);
        Alcotest.(check (float 1e-9)) "full floor restored" 1.0 p.Placement.floor_scale;
        Alcotest.(check bool) "guarantee back" true (tenant_rate fab ~tenant:1 >= 9.5e9));
    tc "exponential backoff spaces attempts of a stage" (fun () ->
        let sim, fab, mgr = make_mgr () in
        let config = { Remediation.default_config with Remediation.max_attempts = 3 } in
        let rem = Remediation.create ~config mgr in
        Remediation.start rem;
        let p = submit_one mgr (Intent.pipe ~tenant:1 ~src:"gpu0" ~dst:"socket0" ~rate:10e9) in
        let f = start_on fab p ~demand:10e9 () in
        ignore (Manager.attach mgr f);
        run_for sim (U.Units.ms 1.0);
        E.Fabric.inject_fault fab (hop_link p 1) sick;
        run_for sim (U.Units.ms 20.0);
        let rearb =
          List.filter
            (fun (a : Remediation.action) -> a.Remediation.action_stage = Remediation.Rearbitrate)
            (Remediation.actions rem)
        in
        Alcotest.(check int) "bounded attempts" 3 (List.length rearb);
        let rec gaps = function
          | a :: (b : Remediation.action) :: rest ->
            (b.Remediation.at -. a.Remediation.at) :: gaps (b :: rest)
          | _ -> []
        in
        (match gaps rearb with
        | [ g1; g2 ] ->
          Alcotest.(check bool) "first gap >= base backoff" true
            (g1 >= Remediation.default_config.Remediation.base_backoff);
          Alcotest.(check bool) "backoff grows" true (g2 > g1 *. 1.5)
        | _ -> Alcotest.fail "expected two gaps"));
    tc "flap damping holds the case down instead of thrashing" (fun () ->
        let sim, fab, mgr = make_mgr () in
        let rem = Remediation.create mgr in
        Remediation.start rem;
        let p = submit_one mgr (Intent.pipe ~tenant:1 ~src:"ext" ~dst:"socket0" ~rate:10e9) in
        let f = start_on fab p ~demand:10e9 () in
        ignore (Manager.attach mgr f);
        run_for sim (U.Units.ms 1.0);
        let bad = hop_link p 1 in
        let toggles = 12 in
        E.Fabric.flap_link fab bad sick ~period:(U.Units.ms 1.0) ~toggles;
        run_for sim (U.Units.ms 30.0);
        let held =
          List.exists
            (fun (a : Remediation.action) ->
              String.length a.Remediation.detail >= 4
              && String.sub a.Remediation.detail 0 4 = "flap")
            (Remediation.actions rem)
        in
        Alcotest.(check bool) "hold-down engaged" true held;
        Alcotest.(check bool) "actions bounded below toggle count" true
          (Remediation.actions_count rem < toggles);
        match Remediation.case_for rem bad with
        | None -> Alcotest.fail "no case"
        | Some c ->
          Alcotest.(check bool) "eventually resolved" true
            (c.Remediation.status = Remediation.Resolved));
    tc "detector source opens a case when fault events are ignored" (fun () ->
        let sim, fab, mgr = make_mgr () in
        let config =
          { Remediation.default_config with Remediation.use_fault_events = false }
        in
        let rem = Remediation.create ~config mgr in
        Remediation.start rem;
        let p = submit_one mgr (Intent.pipe ~tenant:1 ~src:"ext" ~dst:"socket0" ~rate:10e9) in
        let f = start_on fab p ~demand:10e9 () in
        ignore (Manager.attach mgr f);
        let bad = hop_link p 1 in
        let verdicts = ref [] in
        Remediation.add_source rem ~name:"synthetic" (fun () -> !verdicts);
        run_for sim (U.Units.ms 1.0);
        E.Fabric.inject_fault fab bad sick;
        run_for sim (U.Units.ms 2.0);
        Alcotest.(check bool) "ignored without a detector verdict" true
          (Remediation.case_for rem bad = None);
        verdicts := [ (bad, 1.0) ];
        run_for sim (U.Units.ms 10.0);
        (match Remediation.case_for rem bad with
        | None -> Alcotest.fail "detector verdict did not open a case"
        | Some c ->
          Alcotest.(check bool) "resolved" true (c.Remediation.status = Remediation.Resolved));
        Alcotest.(check bool) "guarantee restored" true (tenant_rate fab ~tenant:1 >= 9.5e9));
    tc "sub-threshold detector scores are ignored" (fun () ->
        let sim, _, mgr = make_mgr () in
        let rem = Remediation.create mgr in
        Remediation.start rem;
        Remediation.add_source rem ~name:"noisy" (fun () -> [ (0, 0.2) ]);
        run_for sim (U.Units.ms 2.0);
        Alcotest.(check int) "no case" 0 (List.length (Remediation.cases rem)));
    tc "hose placements cannot be re-placed" (fun () ->
        let _, _, mgr = make_mgr () in
        match
          Manager.submit mgr (Intent.hose ~tenant:1 ~endpoint:"nic0" ~to_host:1e9 ~from_host:1e9)
        with
        | Error e -> Alcotest.fail (Mgr_error.to_string e)
        | Ok (p :: _) ->
          Alcotest.(check bool) "error" true
            (Result.is_error (Manager.replace_placement mgr ~avoid:[] p))
        | Ok [] -> Alcotest.fail "no placements");
    tc "affected_placements finds exactly the paths crossing the link" (fun () ->
        let _, _, mgr = make_mgr () in
        let p1 = submit_one mgr (Intent.pipe ~tenant:1 ~src:"gpu0" ~dst:"socket0" ~rate:1e9) in
        let _p2 = submit_one mgr (Intent.pipe ~tenant:2 ~src:"nic2" ~dst:"socket1" ~rate:1e9) in
        let bad = hop_link p1 0 in
        match Manager.affected_placements mgr bad with
        | [ p ] -> Alcotest.(check int) "the gpu pipe" p1.Placement.id p.Placement.id
        | l -> Alcotest.failf "expected one affected placement, got %d" (List.length l));
    tc "tail detector is silent while the sketch plane is dormant" (fun () ->
        let sim, fab, mgr = make_mgr () in
        let p =
          submit_one mgr
            {
              (Intent.pipe ~tenant:1 ~src:"ext" ~dst:"socket0" ~rate:1e9) with
              Intent.p99_bound = Some (U.Units.us 10.0);
            }
        in
        let f = start_on fab p ~demand:1e9 () in
        ignore (Manager.attach mgr f);
        run_for sim (U.Units.ms 1.0);
        Alcotest.(check (list (pair int (float 0.0)))) "no verdicts" []
          (Remediation.tail_latency_source mgr ()));
    tc "tail detector blames the worst hop once the bound is breached" (fun () ->
        let sim, fab, mgr = make_mgr () in
        E.Fabric.enable_latency_sketches fab;
        let bound = U.Units.us 10.0 in
        let p =
          submit_one mgr
            {
              (Intent.pipe ~tenant:1 ~src:"ext" ~dst:"socket0" ~rate:1e9) with
              Intent.p99_bound = Some bound;
            }
        in
        let f = start_on fab p ~demand:1e9 () in
        ignore (Manager.attach mgr f);
        run_for sim (U.Units.ms 1.0);
        Alcotest.(check (list (pair int (float 0.0)))) "quiet within bound" []
          (Remediation.tail_latency_source mgr ());
        let h = List.nth p.Placement.path.T.Path.hops 1 in
        let bad = h.T.Path.link.T.Link.id in
        (match E.Fabric.link_latency_sketch fab bad h.T.Path.dir with
        | Some sk -> for _ = 1 to 1000 do U.Sketch.record sk (5.0 *. bound) done
        | None -> Alcotest.fail "sketch plane missing");
        match Remediation.tail_latency_source mgr () with
        | [ (link, score) ] ->
          Alcotest.(check int) "blames the polluted hop" bad link;
          Alcotest.(check bool) "score positive and clamped" true (score > 0.0 && score <= 1.0)
        | l -> Alcotest.failf "expected one verdict, got %d" (List.length l));
    tc "tail detector drives re-placement off a latency-only fault" (fun () ->
        (* extra_latency with capacity_factor 1.0: invisible to every
           bandwidth detector, only the sketches can see it *)
        let sim, fab, mgr = make_mgr () in
        E.Fabric.enable_latency_sketches fab;
        let config = { Remediation.default_config with Remediation.use_fault_events = false } in
        let rem = Remediation.create ~config mgr in
        Remediation.start rem;
        Remediation.add_source rem ~name:"tail" (Remediation.tail_latency_source mgr);
        let bound = U.Units.us 50.0 in
        let p =
          submit_one mgr
            {
              (Intent.pipe ~tenant:1 ~src:"ext" ~dst:"socket0" ~rate:5e9) with
              Intent.p99_bound = Some bound;
            }
        in
        let f = start_on fab p ~demand:5e9 () in
        ignore (Manager.attach mgr f);
        run_for sim (U.Units.ms 1.0);
        let bad = hop_link p 1 in
        E.Fabric.inject_fault fab bad
          (E.Fault.degrade ~capacity_factor:1.0 ~extra_latency:(20.0 *. bound) ());
        run_for sim (U.Units.ms 10.0);
        (match Remediation.case_for rem bad with
        | None -> Alcotest.fail "tail verdict did not open a case"
        | Some c ->
          Alcotest.(check bool) "resolved" true (c.Remediation.status = Remediation.Resolved));
        Alcotest.(check bool) "placement moved off the slow link" true
          (not
             (List.exists
                (fun (h : T.Path.hop) -> h.T.Path.link.T.Link.id = bad)
                p.Placement.path.T.Path.hops)));
    tc "host wires heartbeat localization as a detector" (fun () ->
        let host = Ihnet.Host.create Ihnet.Host.Two_socket in
        let config =
          { Remediation.default_config with Remediation.use_fault_events = false }
        in
        let rem = Ihnet.Host.enable_remediation host ~config () in
        let mgr = Option.get (Ihnet.Host.manager host) in
        let p =
          match Ihnet.Host.submit_intent host (Intent.pipe ~tenant:1 ~src:"ext" ~dst:"socket0" ~rate:10e9) with
          | Ok [ p ] -> p
          | _ -> Alcotest.fail "submit failed"
        in
        let f = start_on (Ihnet.Host.fabric host) p ~demand:10e9 () in
        ignore (Manager.attach mgr f);
        Ihnet.Host.run_for host (U.Units.ms 10.0);
        let bad = hop_link p 1 in
        E.Fabric.inject_fault (Ihnet.Host.fabric host) bad sick;
        Ihnet.Host.run_for host (U.Units.ms 20.0);
        Alcotest.(check bool) "heartbeats opened the case" true
          (Remediation.case_for rem bad <> None);
        Alcotest.(check bool) "guarantee restored" true
          (tenant_rate (Ihnet.Host.fabric host) ~tenant:1 >= 9.5e9));
  ]

let suites =
  [
    ("arbiter-lifecycle", arbiter_regressions);
    ("arbiter-floor-props", arbiter_props);
    ("remediation", remediation_tests);
  ]
