(* Integration tests for the Ihnet.Host facade — end-to-end scenarios. *)

open Ihnet
module E = Ihnet_engine
module T = Ihnet_topology
module U = Ihnet_util
module W = Ihnet_workload
module Mon = Ihnet_monitor
module R = Ihnet_manager

let tc name f = Alcotest.test_case name `Quick f

let host_tests =
  [
    tc "presets build and validate" (fun () ->
        List.iter
          (fun preset -> ignore (Host.create preset))
          [ Host.Two_socket; Host.Dgx; Host.Epyc; Host.Minimal ]);
    tc "custom topology is validated" (fun () ->
        let bad = T.Topology.create ~name:"bad" () in
        Alcotest.(check bool) "raises" true
          (try
             ignore (Host.create (Host.Custom bad));
             false
           with Invalid_argument _ -> true));
    tc "run_for advances the clock" (fun () ->
        let h = Host.create Host.Minimal in
        Host.run_for h (U.Units.ms 5.0);
        Alcotest.(check (float 1.0)) "now" (U.Units.ms 5.0) (Host.now h));
    tc "tenants register through the host" (fun () ->
        let h = Host.create Host.Minimal in
        let t1 = Host.add_tenant h ~name:"kv" in
        Alcotest.(check int) "first vm id" 1 t1.W.Tenant.id);
    tc "diagnostics shortcuts work" (fun () ->
        let h = Host.create Host.Two_socket in
        (match Host.ping h ~src:"nic0" ~dst:"socket0" with
        | Some rtt -> Alcotest.(check bool) "rtt" true (rtt > 0.0)
        | None -> Alcotest.fail "lost");
        Alcotest.(check bool) "trace" true (List.length (Host.trace h ~src:"ext" ~dst:"gpu0") >= 3);
        Alcotest.(check bool) "bandwidth" true (Host.bandwidth h ~src:"gpu0" ~dst:"ssd0" > 1e9));
    tc "monitoring and manager are idempotent" (fun () ->
        let h = Host.create Host.Minimal in
        let s1 = Host.start_monitoring h () in
        let s2 = Host.start_monitoring h () in
        Alcotest.(check bool) "same sampler" true (s1 == s2);
        let m1 = Host.enable_manager h () in
        let m2 = Host.enable_manager h () in
        Alcotest.(check bool) "same manager" true (m1 == m2));
    tc "clean config reports no findings" (fun () ->
        let h = Host.create Host.Two_socket in
        Alcotest.(check (list string)) "clean" [] (Host.check_configuration h));
    tc "default wiring leaves the sketch plane dormant" (fun () ->
        let h = Host.create Host.Minimal in
        ignore (Host.start_monitoring h ());
        ignore (Host.enable_manager h ());
        Alcotest.(check bool) "dormant" false
          (E.Fabric.latency_sketches_enabled (Host.fabric h)));
    tc "wiring.latency_sketches arms the plane" (fun () ->
        let h = Host.create Host.Minimal in
        ignore
          (Host.start_monitoring h
             ~wiring:{ Host.default_wiring with Host.latency_sketches = true }
             ());
        Alcotest.(check bool) "enabled via monitoring" true
          (E.Fabric.latency_sketches_enabled (Host.fabric h));
        let h2 = Host.create Host.Minimal in
        ignore
          (Host.enable_manager h2
             ~wiring:{ Host.default_wiring with Host.latency_sketches = true }
             ());
        Alcotest.(check bool) "enabled via manager" true
          (E.Fabric.latency_sketches_enabled (Host.fabric h2)));
  ]

(* End-to-end scenario: the paper's §2 interference story plus its §3
   remedy, in one test. *)
let scenario_tests =
  [
    tc "E2E: aggressor hurts the kv store; the manager heals it" (fun () ->
        let h = Host.create Host.Two_socket in
        let fab = Host.fabric h in
        let kv_tenant = Host.add_tenant h ~name:"kv" in
        let ml_tenant = Host.add_tenant h ~name:"ml" in
        (* phase 1: kv alone *)
        let kv =
          W.Kvstore.start fab (W.Kvstore.default_config ~tenant:kv_tenant.W.Tenant.id ~nic:"nic0")
        in
        Host.run_for h (U.Units.ms 10.0);
        let alone = U.Histogram.percentile (W.Kvstore.latencies kv) 0.99 in
        (* phase 2: co-located ML trainer steals the PCIe subtree *)
        let ml =
          W.Mltrain.start fab
            {
              (W.Mltrain.default_config ~tenant:ml_tenant.W.Tenant.id ~gpu:"gpu0"
                 ~data_source:"dimm0.0.0") with
              W.Mltrain.compute_time = 0.0;
            }
        in
        Host.run_for h (U.Units.ms 20.0);
        let contended = U.Histogram.percentile (W.Kvstore.latencies kv) 0.99 in
        Alcotest.(check bool) "interference visible" true (contended > alone *. 1.2);
        (* phase 3: submit an intent; the shim protects the kv flows *)
        let mgr = Host.enable_manager h () in
        (match
           Host.submit_intent h
             (R.Intent.pipe ~tenant:kv_tenant.W.Tenant.id ~src:"ext" ~dst:"socket0"
                ~rate:(U.Units.gbps 4.0))
         with
        | Ok _ -> ()
        | Error e -> Alcotest.fail (Manager.error_to_string e));
        Host.run_for h (U.Units.ms 30.0);
        Alcotest.(check bool) "manager engaged" true (R.Manager.decisions mgr > 0);
        Alcotest.(check bool) "kv keeps its rate under management" true
          (W.Kvstore.achieved_rate kv >= W.Kvstore.offered_rate kv *. 0.98);
        W.Mltrain.stop ml;
        W.Kvstore.stop kv);
    tc "E2E: monitor pipeline detects an injected anomaly" (fun () ->
        let h = Host.create Host.Two_socket in
        let fab = Host.fabric h in
        let sampler =
          Host.start_monitoring h
            ~wiring:
              {
                Host.default_wiring with
                Host.sampler =
                  Some
                    {
                      (Mon.Sampler.default_config ()) with
                      Mon.Sampler.period = U.Units.us 100.0;
                      fidelity = Mon.Counter.Oracle;
                    };
              }
            ()
        in
        let topo = Host.topology h in
        let nic = Option.get (T.Topology.device_by_name topo "nic0") in
        let sw = Option.get (T.Topology.device_by_name topo "pciesw0") in
        let link =
          match T.Topology.links_between topo sw.T.Device.id nic.T.Device.id with
          | [ l ] -> l.T.Link.id
          | _ -> Alcotest.fail "expected one link"
        in
        let platform = Mon.Anomaly.create () in
        Mon.Anomaly.watch platform
          ~series:(Mon.Sampler.util_series link T.Link.Rev)
          (Mon.Anomaly.Threshold { above = Some 0.8; below = None });
        Host.run_for h (U.Units.ms 5.0);
        Mon.Anomaly.feed platform (Mon.Sampler.telemetry sampler);
        Alcotest.(check bool) "quiet" true (Mon.Anomaly.alarms platform = []);
        (* loopback aggressor saturates the nic link *)
        let lb = W.Rdma.start_loopback fab ~tenant:5 ~nic:"nic0" () in
        Host.run_for h (U.Units.ms 5.0);
        Mon.Anomaly.feed platform (Mon.Sampler.telemetry sampler);
        Alcotest.(check bool) "alarm" true (Mon.Anomaly.alarms platform <> []);
        W.Rdma.stop_loopback lb);
    tc "E2E: dgx host sustains many concurrent tenants" (fun () ->
        let h = Host.create Host.Dgx in
        let fab = Host.fabric h in
        let topo = Host.topology h in
        (* one trainer per GPU pair, one storage stream, heartbeats on *)
        ignore (Host.start_heartbeats h ());
        let trainers =
          List.filter_map
            (fun i ->
              let gpu = Printf.sprintf "gpu%d" i in
              if T.Topology.device_by_name topo gpu <> None then
                Some
                  (W.Mltrain.start fab
                     {
                       (W.Mltrain.default_config ~tenant:(i + 1) ~gpu ~data_source:"dimm0.0.0") with
                       W.Mltrain.batch_bytes = U.Units.mib 32.0;
                       compute_time = U.Units.ms 1.0;
                     })
              else None)
            [ 0; 2; 4; 6 ]
        in
        Host.run_for h (U.Units.ms 50.0);
        List.iter
          (fun tr -> Alcotest.(check bool) "progress" true (W.Mltrain.iterations_done tr >= 2))
          trainers;
        (* heartbeats stayed healthy *)
        match Host.heartbeat h with
        | Some hb -> Alcotest.(check bool) "no failures" true (Mon.Heartbeat.failing_pairs hb = [])
        | None -> Alcotest.fail "no heartbeat");
  ]

let suites = [ ("host.facade", host_tests); ("host.scenarios", scenario_tests) ]
