(* Unit and integration tests for ihnet_workload. *)

open Ihnet_workload
module E = Ihnet_engine
module T = Ihnet_topology
module U = Ihnet_util

let tc name f = Alcotest.test_case name `Quick f
let check_close ?(eps = 1e-6) msg expected actual = Alcotest.(check (float eps)) msg expected actual

let make_host () =
  let topo = T.Builder.two_socket_server () in
  let sim = E.Sim.create () in
  let fab = E.Fabric.create sim topo in
  (topo, sim, fab)

let path fab a b =
  let topo = E.Fabric.topology fab in
  let id name =
    match T.Topology.device_by_name topo name with
    | Some d -> d.T.Device.id
    | None -> Alcotest.failf "no device %s" name
  in
  match T.Routing.shortest_path topo (id a) (id b) with
  | Some p -> p
  | None -> Alcotest.failf "no path %s->%s" a b

(* {1 Tenant registry} *)

let tenant_tests =
  [
    tc "infra tenant is pre-registered as id 0" (fun () ->
        let reg = Tenant.create_registry () in
        Alcotest.(check int) "id" 0 (Tenant.infra reg).Tenant.id;
        Alcotest.(check int) "count" 1 (Tenant.count reg));
    tc "register assigns increasing ids" (fun () ->
        let reg = Tenant.create_registry () in
        let a = Tenant.register reg ~name:"a" ~kind:Tenant.Vm in
        let b = Tenant.register reg ~name:"b" ~kind:Tenant.Container in
        Alcotest.(check int) "a" 1 a.Tenant.id;
        Alcotest.(check int) "b" 2 b.Tenant.id);
    tc "duplicate names rejected" (fun () ->
        let reg = Tenant.create_registry () in
        ignore (Tenant.register reg ~name:"x" ~kind:Tenant.Vm);
        Alcotest.check_raises "dup" (Invalid_argument "Tenant.register: duplicate name x")
          (fun () -> ignore (Tenant.register reg ~name:"x" ~kind:Tenant.Vm)));
    tc "find by id and name" (fun () ->
        let reg = Tenant.create_registry () in
        let a = Tenant.register reg ~name:"kv" ~kind:Tenant.Vm in
        Alcotest.(check bool) "by id" true (Tenant.find reg a.Tenant.id = Some a);
        Alcotest.(check bool) "by name" true (Tenant.find_by_name reg "kv" = Some a);
        Alcotest.(check bool) "missing" true (Tenant.find reg 99 = None));
  ]

(* {1 Traffic generators} *)

let traffic_tests =
  [
    tc "constant stream offers its configured rate" (fun () ->
        let _, sim, fab = make_host () in
        let p = path fab "nic0" "dimm0.0.0" in
        let s = Traffic.constant_stream fab ~tenant:1 ~rate:1e9 ~path:p () in
        check_close ~eps:1e3 "rate" 1e9 (Traffic.current_rate s);
        E.Sim.run ~until:(U.Units.ms 10.0) sim;
        (* 1 GB/s for 10 ms = 10 MB *)
        check_close ~eps:1e4 "moved" 1e7 (Traffic.transferred_bytes s);
        Traffic.stop s;
        check_close "stopped" 0.0 (Traffic.current_rate s));
    tc "poisson transfers complete and report durations" (fun () ->
        let _, sim, fab = make_host () in
        let p = path fab "ssd0" "dimm0.0.0" in
        let rng = U.Rng.create 7 in
        let count = ref 0 in
        let s =
          Traffic.poisson_transfers fab ~rng ~tenant:1 ~rate_per_s:10_000.0
            ~size:(Traffic.Fixed 1e6) ~path:p
            ~on_transfer:(fun ~bytes ~duration ->
              Alcotest.(check bool) "sane" true (bytes = 1e6 && duration > 0.0);
              incr count)
            ()
        in
        E.Sim.run ~until:(U.Units.ms 10.0) sim;
        Traffic.stop s;
        (* ~100 arrivals expected in 10 ms at 10k/s *)
        Alcotest.(check bool) "plausible count" true (!count > 50 && !count < 200));
    tc "poisson arrivals stop after stop" (fun () ->
        let _, sim, fab = make_host () in
        let p = path fab "ssd0" "dimm0.0.0" in
        let rng = U.Rng.create 7 in
        let count = ref 0 in
        let s =
          Traffic.poisson_transfers fab ~rng ~tenant:1 ~rate_per_s:10_000.0
            ~size:(Traffic.Fixed 1e4) ~path:p
            ~on_transfer:(fun ~bytes:_ ~duration:_ -> incr count)
            ()
        in
        E.Sim.run ~until:(U.Units.ms 5.0) sim;
        Traffic.stop s;
        let at_stop = !count in
        E.Sim.run ~until:(U.Units.ms 20.0) sim;
        Alcotest.(check int) "no new arrivals" at_stop !count);
    tc "on_off stream idles between bursts" (fun () ->
        let _, sim, fab = make_host () in
        let p = path fab "nic0" "dimm0.0.0" in
        let s =
          Traffic.on_off_stream fab ~tenant:1 ~rate:1e9 ~period:(U.Units.ms 1.0) ~duty:0.5
            ~path:p ()
        in
        (* during first on-phase *)
        E.Sim.run ~until:(U.Units.us 100.0) sim;
        check_close ~eps:1e3 "on" 1e9 (Traffic.current_rate s);
        (* in the off-phase (0.5 - 1.0 ms) *)
        E.Sim.run ~until:(U.Units.us 700.0) sim;
        check_close "off" 0.0 (Traffic.current_rate s);
        (* second on-phase *)
        E.Sim.run ~until:(U.Units.us 1100.0) sim;
        check_close ~eps:1e3 "on again" 1e9 (Traffic.current_rate s);
        Traffic.stop s);
    tc "duty 1.0 keeps the source always on" (fun () ->
        let _, sim, fab = make_host () in
        let p = path fab "nic0" "dimm0.0.0" in
        let s =
          Traffic.on_off_stream fab ~tenant:1 ~rate:1e9 ~period:(U.Units.ms 1.0) ~duty:1.0
            ~path:p ()
        in
        (* sample across several period boundaries *)
        List.iter
          (fun ms ->
            E.Sim.run ~until:(U.Units.ms ms) sim;
            check_close ~eps:1e3 (Printf.sprintf "on at %.1f ms" ms) 1e9
              (Traffic.current_rate s))
          [ 0.5; 1.5; 2.5 ];
        Traffic.stop s);
    tc "size distributions respect bounds" (fun () ->
        let rng = U.Rng.create 3 in
        for _ = 1 to 200 do
          let u = Traffic.draw_size rng (Traffic.Uniform (10.0, 20.0)) in
          Alcotest.(check bool) "uniform" true (u >= 10.0 && u < 20.0);
          let p = Traffic.draw_size rng (Traffic.Pareto { alpha = 1.5; x_min = 100.0 }) in
          Alcotest.(check bool) "pareto" true (p >= 100.0)
        done);
  ]

(* {1 KV store} *)

let kvstore_tests =
  [
    tc "idle kv store has low, stable latency" (fun () ->
        let _, sim, fab = make_host () in
        let kv = Kvstore.start fab (Kvstore.default_config ~tenant:1 ~nic:"nic0") in
        E.Sim.run ~until:(U.Units.ms 20.0) sim;
        let lat = Kvstore.latencies kv in
        Alcotest.(check bool) "samples" true (U.Histogram.count lat > 100);
        let p50 = U.Histogram.percentile lat 0.5 in
        (* two inter-host hops alone are 3 us; idle intra-host adds ~1 us *)
        Alcotest.(check bool) "sane idle latency" true (p50 > 3_000.0 && p50 < 15_000.0);
        Kvstore.stop kv);
    tc "kv latency degrades under pcie congestion" (fun () ->
        let _, sim, fab = make_host () in
        let kv = Kvstore.start fab (Kvstore.default_config ~tenant:1 ~nic:"nic0") in
        E.Sim.run ~until:(U.Units.ms 10.0) sim;
        let idle_p50 = U.Histogram.percentile (Kvstore.latencies kv) 0.5 in
        (* aggressor on the same PCIe subtree *)
        let agg = Rdma.start_loopback fab ~tenant:2 ~nic:"nic0" () in
        E.Sim.run ~until:(U.Units.ms 30.0) sim;
        let busy_p50 = U.Histogram.percentile (Kvstore.latencies kv) 0.5 in
        Alcotest.(check bool) "worse" true (busy_p50 > idle_p50);
        Rdma.stop_loopback agg;
        Kvstore.stop kv);
    tc "achieved rate tracks offered rate when uncontended" (fun () ->
        let _, sim, fab = make_host () in
        let kv = Kvstore.start fab (Kvstore.default_config ~tenant:1 ~nic:"nic0") in
        E.Sim.run ~until:(U.Units.ms 5.0) sim;
        check_close ~eps:100.0 "rate" (Kvstore.offered_rate kv) (Kvstore.achieved_rate kv);
        Kvstore.stop kv);
    tc "rejects unknown nic" (fun () ->
        let _, _, fab = make_host () in
        Alcotest.check_raises "bad nic" (Invalid_argument "Kvstore: no device nicX") (fun () ->
            ignore (Kvstore.start fab (Kvstore.default_config ~tenant:1 ~nic:"nicX"))));
    tc "dimm-targeted store bypasses the LLC and touches the channel" (fun () ->
        let _, sim, fab = make_host () in
        let config =
          { (Kvstore.default_config ~tenant:1 ~nic:"nic0") with Kvstore.target = `Dimm "dimm0.0.0" }
        in
        let kv = Kvstore.start fab config in
        E.Sim.run ~until:(U.Units.ms 5.0) sim;
        (* no DDIO writes registered; the channel carries the requests *)
        Alcotest.(check (float 1e3)) "no ddio writes" 0.0
          (E.Fabric.ddio_write_rate fab ~socket:0);
        let topo = E.Fabric.topology fab in
        let mc = Option.get (T.Topology.device_by_name topo "mc0.0") in
        let dimm = Option.get (T.Topology.device_by_name topo "dimm0.0.0") in
        (match T.Topology.links_between topo mc.T.Device.id dimm.T.Device.id with
        | [ l ] ->
          let moved =
            E.Fabric.tenant_link_bytes fab l.T.Link.id T.Link.Fwd ~tenant:1
            +. E.Fabric.tenant_link_bytes fab l.T.Link.id T.Link.Rev ~tenant:1
          in
          Alcotest.(check bool) "channel traffic" true (moved > 1e5)
        | _ -> Alcotest.fail "expected one channel link");
        Kvstore.stop kv);
    tc "backlog penalty appears when the store is throttled" (fun () ->
        let _, sim, fab = make_host () in
        let kv = Kvstore.start fab (Kvstore.default_config ~tenant:1 ~nic:"nic0") in
        E.Sim.run ~until:(U.Units.ms 5.0) sim;
        let idle_p50 = U.Histogram.percentile (Kvstore.latencies kv) 0.5 in
        (* throttle the store's inbound flow far below its offered load *)
        List.iter
          (fun (f : E.Flow.t) ->
            if f.E.Flow.tenant = 1 then E.Fabric.set_flow_limits fab f ~cap:1e6 ())
          (E.Fabric.active_flows fab);
        U.Histogram.clear (Kvstore.latencies kv);
        E.Sim.run ~until:(U.Units.ms 10.0) sim;
        let throttled_p50 = U.Histogram.percentile (Kvstore.latencies kv) 0.5 in
        Alcotest.(check bool) "queueing penalty" true (throttled_p50 > idle_p50 *. 10.0);
        Alcotest.(check bool) "achieved collapsed" true
          (Kvstore.achieved_rate kv < Kvstore.offered_rate kv /. 10.0);
        Kvstore.stop kv);
  ]

(* {1 ML trainer} *)

let mltrain_tests =
  [
    tc "iterations complete and are timed" (fun () ->
        let _, sim, fab = make_host () in
        let config =
          {
            (Mltrain.default_config ~tenant:1 ~gpu:"gpu0" ~data_source:"dimm0.0.0") with
            Mltrain.batch_bytes = U.Units.mib 64.0;
            compute_time = U.Units.ms 1.0;
            iterations = Some 5;
          }
        in
        let ml = Mltrain.start fab config in
        E.Sim.run sim;
        Alcotest.(check int) "iters" 5 (Mltrain.iterations_done ml);
        Alcotest.(check bool) "stopped" false (Mltrain.running ml);
        let times = Mltrain.iteration_times ml in
        Alcotest.(check int) "timed" 5 (U.Histogram.count times);
        (* 64 MiB at <= 25.6 GB/s is >= 2.6 ms, plus 1 ms compute *)
        Alcotest.(check bool) "duration sane" true
          (U.Histogram.percentile times 0.5 > U.Units.ms 3.0));
    tc "congestion stretches iterations" (fun () ->
        let _, sim, fab = make_host () in
        let config =
          {
            (Mltrain.default_config ~tenant:1 ~gpu:"gpu0" ~data_source:"dimm0.0.0") with
            Mltrain.batch_bytes = U.Units.mib 64.0;
            compute_time = 0.0;
            iterations = Some 3;
          }
        in
        let alone = Mltrain.start fab config in
        E.Sim.run sim;
        let t_alone = U.Histogram.mean (Mltrain.iteration_times alone) in
        (* competing bulk flow on the same path *)
        let p = path fab "dimm0.0.0" "gpu0" in
        let agg = E.Fabric.start_flow fab ~tenant:2 ~path:p ~size:E.Flow.Unbounded () in
        let busy = Mltrain.start fab config in
        E.Sim.run sim;
        ignore agg;
        let t_busy = U.Histogram.mean (Mltrain.iteration_times busy) in
        Alcotest.(check bool) "slower" true (t_busy > t_alone *. 1.3));
    tc "sync transfers traverse the nic" (fun () ->
        let _, sim, fab = make_host () in
        let config =
          {
            (Mltrain.default_config ~tenant:1 ~gpu:"gpu0" ~data_source:"dimm0.0.0") with
            Mltrain.batch_bytes = 1e6;
            compute_time = 0.0;
            sync = Some ("nic0", 1e6);
            iterations = Some 2;
          }
        in
        let ml = Mltrain.start fab config in
        E.Sim.run sim;
        Alcotest.(check int) "iters" 2 (Mltrain.iterations_done ml);
        (* bytes must have crossed the gpu-switch link in both runs *)
        let topo = E.Fabric.topology fab in
        let gpu = Option.get (T.Topology.device_by_name topo "gpu0") in
        let sw = Option.get (T.Topology.device_by_name topo "pciesw0") in
        match T.Topology.links_between topo sw.T.Device.id gpu.T.Device.id with
        | [ l ] ->
          let b =
            E.Fabric.tenant_link_bytes fab l.T.Link.id T.Link.Fwd ~tenant:1
            +. E.Fabric.tenant_link_bytes fab l.T.Link.id T.Link.Rev ~tenant:1
          in
          Alcotest.(check bool) "nonzero" true (b > 3e6)
        | _ -> Alcotest.fail "expected one sw-gpu link");
    tc "stop interrupts the loop" (fun () ->
        let _, sim, fab = make_host () in
        let ml =
          Mltrain.start fab (Mltrain.default_config ~tenant:1 ~gpu:"gpu0" ~data_source:"dimm0.0.0")
        in
        E.Sim.run ~until:(U.Units.ms 3.0) sim;
        Mltrain.stop ml;
        let done_at_stop = Mltrain.iterations_done ml in
        E.Sim.run ~until:(U.Units.ms 100.0) sim;
        Alcotest.(check int) "no progress after stop" done_at_stop (Mltrain.iterations_done ml));
  ]

(* {1 RDMA} *)

let rdma_tests =
  [
    tc "loopback exhausts pcie bandwidth" (fun () ->
        let _, sim, fab = make_host () in
        let lb = Rdma.start_loopback fab ~tenant:2 ~nic:"nic0" () in
        E.Sim.run ~until:(U.Units.ms 1.0) sim;
        (* both directions of the nic's x16 link should be nearly full *)
        Alcotest.(check bool) "aggregate" true (Rdma.loopback_rate lb > 40e9);
        Rdma.stop_loopback lb;
        Alcotest.(check bool) "released" true (Rdma.loopback_rate lb < 1.0));
    tc "remote read breakdown covers classes 2..5" (fun () ->
        let _, _, fab = make_host () in
        let hops = Rdma.remote_read_breakdown fab ~nic:"nic0" ~target:"dimm0.0.0" in
        let classes =
          List.filter_map (fun (h : Rdma.hop_breakdown) -> h.Rdma.figure1_class) hops
          |> List.sort_uniq compare
        in
        Alcotest.(check bool) "has inter-host" true (List.mem 5 classes);
        Alcotest.(check bool) "has pcie" true (List.mem 3 classes || List.mem 4 classes);
        Alcotest.(check bool) "has memory" true (List.mem 2 classes));
    tc "intra-host share is meaningful and grows under load" (fun () ->
        let _, sim, fab = make_host () in
        let idle = Rdma.intra_host_share fab ~nic:"nic0" ~target:"dimm0.0.0" in
        Alcotest.(check bool) "idle share" true (idle > 0.1 && idle < 0.6);
        let lb = Rdma.start_loopback fab ~tenant:2 ~nic:"nic0" () in
        E.Sim.run ~until:(U.Units.ms 1.0) sim;
        let busy = Rdma.intra_host_share fab ~nic:"nic0" ~target:"dimm0.0.0" in
        Alcotest.(check bool) "grows" true (busy > idle);
        Rdma.stop_loopback lb);
  ]

(* {1 Storage} *)

let storage_tests =
  [
    tc "ops complete with plausible latencies" (fun () ->
        let _, sim, fab = make_host () in
        let st = Storage.start fab (Storage.default_config ~tenant:1 ~ssd:"ssd0" ~target:"dimm0.0.0") in
        E.Sim.run ~until:(U.Units.ms 10.0) sim;
        Storage.stop st;
        Alcotest.(check bool) "ops" true (Storage.completed_ops st > 50);
        Alcotest.(check bool) "bytes" true (Storage.bytes_moved st > 1e6);
        let lat = Storage.op_latencies st in
        Alcotest.(check bool) "latency positive" true (U.Histogram.percentile lat 0.5 > 0.0));
    tc "read_fraction 0 means all writes" (fun () ->
        let _, sim, fab = make_host () in
        let config =
          {
            (Storage.default_config ~tenant:1 ~ssd:"ssd0" ~target:"dimm0.0.0") with
            Storage.read_fraction = 0.0;
            block = Traffic.Fixed 1e5;
          }
        in
        let st = Storage.start fab config in
        E.Sim.run ~until:(U.Units.ms 5.0) sim;
        Storage.stop st;
        (* writes go dimm -> ssd; no bytes should land in the ssd->dimm dir *)
        let topo = E.Fabric.topology fab in
        let ssd = Option.get (T.Topology.device_by_name topo "ssd0") in
        let sw = Option.get (T.Topology.device_by_name topo "pciesw0") in
        match T.Topology.links_between topo sw.T.Device.id ssd.T.Device.id with
        | [ l ] ->
          let into_ssd = E.Fabric.tenant_link_bytes fab l.T.Link.id T.Link.Fwd ~tenant:1 in
          let from_ssd = E.Fabric.tenant_link_bytes fab l.T.Link.id T.Link.Rev ~tenant:1 in
          Alcotest.(check bool) "writes flowed" true (into_ssd > 0.0);
          Alcotest.(check (float 1.0)) "no reads" 0.0 from_ssd
        | _ -> Alcotest.fail "expected one sw-ssd link");
  ]

(* {1 Allreduce} *)

let allreduce_tests =
  [
    tc "completes the configured iterations" (fun () ->
        let _, sim, fab = make_host () in
        let ar =
          Allreduce.start fab
            {
              Allreduce.tenant = 1;
              ring = [ "gpu0"; "gpu1" ];
              data_bytes = U.Units.mib 16.0;
              iterations = 3;
            }
        in
        E.Sim.run sim;
        Alcotest.(check int) "iterations" 3 (Allreduce.iterations_done ar);
        Alcotest.(check bool) "stopped" false (Allreduce.running ar);
        Alcotest.(check bool) "bandwidth computed" true
          (Allreduce.algorithmic_bandwidth ar > 0.0));
    tc "iteration time matches the ring-step arithmetic" (fun () ->
        (* 2 GPUs: 2 steps of 8 MiB chunks; cross-socket path bottleneck
           is the inter-socket link at 40 GB/s shared by both directions
           independently, so each step is ~chunk/pcie_eff *)
        let _, sim, fab = make_host () in
        let ar =
          Allreduce.start fab
            {
              Allreduce.tenant = 1;
              ring = [ "gpu0"; "gpu1" ];
              data_bytes = U.Units.mib 16.0;
              iterations = 1;
            }
        in
        E.Sim.run sim;
        let med = U.Histogram.percentile (Allreduce.iteration_times ar) 0.5 in
        (* chunk 8 MiB at ~28.6 GB/s effective = ~293 us per step, 2 steps *)
        Alcotest.(check bool) "order of magnitude" true
          (med > U.Units.us 400.0 && med < U.Units.ms 2.0));
    tc "rejects rings shorter than 2" (fun () ->
        let _, _, fab = make_host () in
        Alcotest.check_raises "short" (Invalid_argument "Allreduce: ring needs >= 2 devices")
          (fun () ->
            ignore
              (Allreduce.start fab
                 { Allreduce.tenant = 1; ring = [ "gpu0" ]; data_bytes = 1.0; iterations = 1 })));
    tc "optimize_ring minimizes cost and keeps the anchor" (fun () ->
        let topo = T.Builder.dgx_like () in
        let bad = [ "gpu0"; "gpu4"; "gpu1"; "gpu5"; "gpu2"; "gpu6"; "gpu3"; "gpu7" ] in
        let best = Allreduce.optimize_ring topo bad in
        Alcotest.(check string) "anchor" "gpu0" (List.hd best);
        Alcotest.(check bool) "improves" true
          (Allreduce.ring_cost topo best < Allreduce.ring_cost topo bad);
        (* the optimum crosses sockets exactly twice: cost within 2x of
           an ideal grouped ring *)
        let grouped = [ "gpu0"; "gpu1"; "gpu2"; "gpu3"; "gpu4"; "gpu5"; "gpu6"; "gpu7" ] in
        Alcotest.(check bool) "as good as grouped" true
          (Allreduce.ring_cost topo best <= Allreduce.ring_cost topo grouped +. 1e-9));
    tc "stop interrupts mid-iteration" (fun () ->
        let _, sim, fab = make_host () in
        let ar =
          Allreduce.start fab
            {
              Allreduce.tenant = 1;
              ring = [ "gpu0"; "gpu1" ];
              data_bytes = U.Units.mib 256.0;
              iterations = 100;
            }
        in
        E.Sim.run ~until:(U.Units.ms 2.0) sim;
        Allreduce.stop ar;
        let at_stop = Allreduce.iterations_done ar in
        E.Sim.run sim;
        Alcotest.(check int) "frozen" at_stop (Allreduce.iterations_done ar);
        Alcotest.(check int) "no leaked flows" 0 (E.Fabric.flow_count fab));
  ]

(* {1 Trace} *)

let trace_tests =
  [
    tc "csv round trip" (fun () ->
        let tr = Trace.empty () in
        Trace.add tr { Trace.at = 100.0; src = "nic0"; dst = "dimm0.0.0"; bytes = 1e6; tenant = 1 };
        Trace.add tr { Trace.at = 50.0; src = "gpu0"; dst = "socket0"; bytes = 2e6; tenant = 2 };
        let csv = Trace.to_csv tr in
        match Trace.of_csv csv with
        | Error e -> Alcotest.fail e
        | Ok tr' ->
          Alcotest.(check int) "length" 2 (Trace.length tr');
          let evs = Trace.events tr' in
          Alcotest.(check bool) "sorted" true ((List.hd evs).Trace.at = 50.0));
    tc "bad csv reports line" (fun () ->
        match Trace.of_csv "at_ns,src,dst,bytes,tenant\nnot-a-number,a,b,1,1\n" with
        | Error e -> Alcotest.(check bool) "mentions line" true (String.length e > 0)
        | Ok _ -> Alcotest.fail "expected error");
    tc "replay executes all transfers" (fun () ->
        let _, sim, fab = make_host () in
        let tr = Trace.empty () in
        for i = 0 to 9 do
          Trace.add tr
            {
              Trace.at = float_of_int i *. U.Units.us 100.0;
              src = "nic0";
              dst = "dimm0.0.0";
              bytes = 1e5;
              tenant = 1;
            }
        done;
        let stats = Trace.replay fab tr in
        E.Sim.run sim;
        Alcotest.(check int) "completed" 10 stats.Trace.completed;
        check_close "bytes" 1e6 stats.Trace.total_bytes);
    tc "replay rejects unknown devices" (fun () ->
        let _, _, fab = make_host () in
        let tr = Trace.empty () in
        Trace.add tr { Trace.at = 0.0; src = "nope"; dst = "dimm0.0.0"; bytes = 1.0; tenant = 1 };
        Alcotest.check_raises "unknown" (Invalid_argument "Trace.replay: no device nope")
          (fun () -> ignore (Trace.replay fab tr)));
  ]

let suites =
  [
    ("workload.tenant", tenant_tests);
    ("workload.traffic", traffic_tests);
    ("workload.kvstore", kvstore_tests);
    ("workload.mltrain", mltrain_tests);
    ("workload.rdma", rdma_tests);
    ("workload.storage", storage_tests);
    ("workload.allreduce", allreduce_tests);
    ("workload.trace", trace_tests);
  ]
