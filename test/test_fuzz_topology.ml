(* Fuzzing across randomly shaped hosts: the engine/routing invariants
   must hold on any valid topology, not only the canned ones. *)

module E = Ihnet_engine
module T = Ihnet_topology
module U = Ihnet_util

let prop name ?(count = 60) gen f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count gen f)

(* random-but-valid host shapes via the parametric builder *)
let topo_gen =
  QCheck.make
    ~print:(fun (s, sw, d) -> Printf.sprintf "scaled %dx%dx%d" s sw d)
    QCheck.Gen.(
      let* s = int_range 1 4 in
      let* sw = int_range 1 3 in
      let* d = int_range 1 5 in
      return (s, sw, d))

let build (s, sw, d) = T.Builder.scaled ~sockets:s ~switches_per_socket:sw ~devices_per_switch:d ()

(* random spec text: sockets + devices on random attachment points *)
let spec_gen =
  QCheck.make
    ~print:(fun s -> s)
    QCheck.Gen.(
      let* sockets = int_range 1 3 in
      let* devices = int_range 1 6 in
      let* kinds = list_size (return devices) (int_range 0 3) in
      let buf = Buffer.create 128 in
      Buffer.add_string buf "host fuzz\n";
      for i = 0 to sockets - 1 do
        Buffer.add_string buf (Printf.sprintf "socket %d mc=1 channels=2\n" i)
      done;
      let* positions = list_size (return devices) (int_range 0 (sockets - 1)) in
      List.iteri
        (fun i (kind, sock) ->
          let line =
            match kind with
            | 0 -> Printf.sprintf "nic n%d at %d:%d port=100\n" i sock i
            | 1 -> Printf.sprintf "gpu g%d at %d:%d\n" i sock i
            | 2 -> Printf.sprintf "ssd s%d at %d:%d\n" i sock i
            | _ -> Printf.sprintf "fpga f%d at %d:%d\n" i sock i
          in
          Buffer.add_string buf line)
        (List.combine kinds positions);
      (* specs need at least one nic so 'ext' is connected *)
      Buffer.add_string buf (Printf.sprintf "nic lastnic at 0:%d port=100\n" devices);
      return (Buffer.contents buf))

let suites =
  [
    ( "fuzz.topology",
      [
        prop "scaled hosts validate and route between all endpoints" topo_gen (fun shape ->
            let topo = build shape in
            Result.is_ok (T.Topology.validate topo)
            && List.for_all
                 (fun (a : T.Device.t) ->
                   List.for_all
                     (fun (b : T.Device.t) ->
                       T.Routing.reachable topo a.T.Device.id b.T.Device.id)
                     (T.Topology.find_devices topo T.Device.is_endpoint))
                 (T.Topology.find_devices topo T.Device.is_endpoint));
        prop "a flow on any endpoint pair gets a positive, feasible rate" topo_gen
          (fun shape ->
            let topo = build shape in
            let sim = E.Sim.create () in
            let fab = E.Fabric.create sim topo in
            let endpoints =
              Array.of_list (T.Topology.find_devices topo T.Device.is_io_device)
            in
            Array.length endpoints = 0
            ||
            let a = endpoints.(0) and b = endpoints.(Array.length endpoints - 1) in
            (match T.Routing.shortest_path topo a.T.Device.id b.T.Device.id with
            | None -> false
            | Some p when p.T.Path.hops = [] -> true
            | Some p ->
              let f = E.Fabric.start_flow fab ~tenant:1 ~path:p ~size:E.Flow.Unbounded () in
              let feasible =
                List.for_all
                  (fun (l : T.Link.t) ->
                    E.Fabric.link_rate fab l.T.Link.id T.Link.Fwd
                    <= l.T.Link.capacity *. 1.001
                    && E.Fabric.link_rate fab l.T.Link.id T.Link.Rev
                       <= l.T.Link.capacity *. 1.001)
                  (T.Topology.links topo)
              in
              f.E.Flow.rate > 0.0 && feasible));
        prop "random specs parse into valid topologies" ~count:80 spec_gen (fun text ->
            match T.Spec.parse text with
            | Ok topo ->
              Result.is_ok (T.Topology.validate topo)
              && T.Topology.device_by_name topo "ext" <> None
            | Error _ -> false);
      ] );
  ]
