(* Unit and integration tests for ihnet_manager. *)

open Ihnet_manager
module E = Ihnet_engine
module T = Ihnet_topology
module U = Ihnet_util
module W = Ihnet_workload

let tc name f = Alcotest.test_case name `Quick f
let check_close ?(eps = 1e-6) msg expected actual = Alcotest.(check (float eps)) msg expected actual

let make_host () =
  let topo = T.Builder.two_socket_server () in
  let sim = E.Sim.create () in
  let fab = E.Fabric.create sim topo in
  (topo, sim, fab)

let dev topo name =
  match T.Topology.device_by_name topo name with
  | Some d -> d.T.Device.id
  | None -> Alcotest.failf "no device %s" name

let path fab a b =
  let topo = E.Fabric.topology fab in
  match T.Routing.shortest_path topo (dev topo a) (dev topo b) with
  | Some p -> p
  | None -> Alcotest.failf "no path %s->%s" a b

(* {1 Intent} *)

let intent_tests =
  [
    tc "pipe constructor validates" (fun () ->
        let i = Intent.pipe ~tenant:1 ~src:"nic0" ~dst:"gpu0" ~rate:1e9 in
        Alcotest.(check bool) "ok" true (Result.is_ok (Intent.validate i));
        check_close "total" 1e9 (Intent.total_guaranteed i));
    tc "rejects empty and non-positive targets" (fun () ->
        let empty = { (Intent.pipe ~tenant:1 ~src:"a" ~dst:"b" ~rate:1.0) with Intent.targets = [] } in
        Alcotest.(check bool) "empty" true (Result.is_error (Intent.validate empty));
        let bad = Intent.pipe ~tenant:1 ~src:"a" ~dst:"b" ~rate:0.0 in
        Alcotest.(check bool) "zero rate" true (Result.is_error (Intent.validate bad)));
    tc "hose totals both directions" (fun () ->
        let i = Intent.hose ~tenant:1 ~endpoint:"nic0" ~to_host:2e9 ~from_host:1e9 in
        check_close "total" 3e9 (Intent.total_guaranteed i));
    tc "p99 bound must be positive" (fun () ->
        let with_bound b =
          { (Intent.pipe ~tenant:1 ~src:"a" ~dst:"b" ~rate:1.0) with Intent.p99_bound = b }
        in
        Alcotest.(check bool) "zero" true (Result.is_error (Intent.validate (with_bound (Some 0.0))));
        Alcotest.(check bool) "negative" true
          (Result.is_error (Intent.validate (with_bound (Some (-5.0)))));
        Alcotest.(check bool) "positive ok" true
          (Result.is_ok (Intent.validate (with_bound (Some 1000.0)))));
  ]

(* {1 Interpreter} *)

let interpreter_tests =
  [
    tc "pipe compiles to candidates" (fun () ->
        let topo, _, _ = make_host () in
        match Interpreter.compile topo (Intent.pipe ~tenant:1 ~src:"gpu0" ~dst:"ssd0" ~rate:1e9) with
        | Error e -> Alcotest.fail (Mgr_error.to_string e)
        | Ok [ req ] ->
          Alcotest.(check bool) "has candidates" true (req.Interpreter.candidates <> []);
          Alcotest.(check bool) "pipe kind" true (req.Interpreter.kind = Placement.Pipe_fwd)
        | Ok _ -> Alcotest.fail "expected one requirement");
    tc "hose compiles to up and down requirements" (fun () ->
        let topo, _, _ = make_host () in
        match
          Interpreter.compile topo (Intent.hose ~tenant:1 ~endpoint:"nic0" ~to_host:1e9 ~from_host:2e9)
        with
        | Error e -> Alcotest.fail (Mgr_error.to_string e)
        | Ok reqs ->
          Alcotest.(check int) "two" 2 (List.length reqs);
          Alcotest.(check bool) "kinds" true
            (List.exists (fun r -> r.Interpreter.kind = Placement.Hose_to_host) reqs
            && List.exists (fun r -> r.Interpreter.kind = Placement.Hose_from_host) reqs));
    tc "unknown device fails" (fun () ->
        let topo, _, _ = make_host () in
        Alcotest.(check bool) "error" true
          (Result.is_error
             (Interpreter.compile topo (Intent.pipe ~tenant:1 ~src:"nope" ~dst:"gpu0" ~rate:1.0))));
    tc "latency bound filters long candidates" (fun () ->
        let topo, _, _ = make_host () in
        let tight =
          {
            (Intent.pipe ~tenant:1 ~src:"gpu0" ~dst:"gpu1" ~rate:1e9) with
            Intent.latency_bound = Some 10.0 (* impossible: cross-socket needs >500ns *);
          }
        in
        Alcotest.(check bool) "rejected" true (Result.is_error (Interpreter.compile topo tight)));
    tc "p99 bound threads through compile to the placement" (fun () ->
        let topo, _, fab = make_host () in
        let bound = U.Units.us 50.0 in
        let i =
          {
            (Intent.pipe ~tenant:1 ~src:"ext" ~dst:"socket0" ~rate:1e9) with
            Intent.p99_bound = Some bound;
          }
        in
        (match Interpreter.compile topo i with
        | Ok [ req ] ->
          Alcotest.(check bool) "requirement carries bound" true
            (req.Interpreter.p99_bound = Some bound)
        | Ok _ -> Alcotest.fail "expected one requirement"
        | Error e -> Alcotest.fail (Mgr_error.to_string e));
        let mgr = Manager.create fab () in
        match Manager.submit mgr i with
        | Ok [ p ] ->
          Alcotest.(check bool) "placement carries bound" true
            (p.Placement.p99_bound = Some bound)
        | Ok _ -> Alcotest.fail "expected one placement"
        | Error e -> Alcotest.fail (Mgr_error.to_string e));
    tc "p99 bound filters idle-infeasible candidates" (fun () ->
        let topo, _, _ = make_host () in
        let tight =
          {
            (Intent.pipe ~tenant:1 ~src:"gpu0" ~dst:"gpu1" ~rate:1e9) with
            Intent.p99_bound = Some 10.0 (* a p99 bound is also a latency bound *);
          }
        in
        Alcotest.(check bool) "rejected" true (Result.is_error (Interpreter.compile topo tight)));
  ]

(* {1 Scheduler} *)

let scheduler_tests =
  [
    tc "places within headroom, rejects beyond" (fun () ->
        let topo, _, _ = make_host () in
        let sched = Scheduler.create topo ~headroom:0.9 () in
        let compile rate =
          match
            Interpreter.compile topo (Intent.pipe ~tenant:1 ~src:"nic1" ~dst:"socket0" ~rate)
          with
          | Ok [ r ] -> r
          | Ok _ | Error _ -> Alcotest.fail "compile failed"
        in
        (* nic1 is behind a ~31.5 GB/s x16 slot; 0.9 headroom = ~28.3 *)
        (match Scheduler.place sched (compile 20e9) with
        | Ok _ -> ()
        | Error e -> Alcotest.fail (Mgr_error.to_string e));
        (match Scheduler.place sched (compile 20e9) with
        | Ok _ -> Alcotest.fail "should not fit"
        | Error _ -> ()));
    tc "release returns capacity" (fun () ->
        let topo, _, _ = make_host () in
        let sched = Scheduler.create topo () in
        let req =
          match
            Interpreter.compile topo (Intent.pipe ~tenant:1 ~src:"nic1" ~dst:"socket0" ~rate:20e9)
          with
          | Ok [ r ] -> r
          | Ok _ | Error _ -> Alcotest.fail "compile failed"
        in
        let p =
          match Scheduler.place sched req with Ok p -> p | Error e -> Alcotest.fail (Mgr_error.to_string e)
        in
        Alcotest.(check bool) "reserved" true (Scheduler.total_reserved sched > 0.0);
        Scheduler.release sched p;
        check_close "back to zero" 0.0 (Scheduler.total_reserved sched));
    tc "place_all rolls back on failure" (fun () ->
        let topo, _, _ = make_host () in
        let sched = Scheduler.create topo () in
        let compile rate =
          match
            Interpreter.compile topo (Intent.pipe ~tenant:1 ~src:"nic1" ~dst:"socket0" ~rate)
          with
          | Ok [ r ] -> r
          | Ok _ | Error _ -> Alcotest.fail "compile failed"
        in
        (match Scheduler.place_all sched [ compile 20e9; compile 20e9 ] with
        | Ok _ -> Alcotest.fail "expected failure"
        | Error _ -> ());
        check_close "rolled back" 0.0 (Scheduler.total_reserved sched));
    tc "scheduler spreads pipes across alternative pathways" (fun () ->
        (* gpu0 -> dimm paths can go via different memory controllers;
           two large pipes should not stack on one channel *)
        let topo, _, _ = make_host () in
        let sched = Scheduler.create topo () in
        let compile dst =
          match Interpreter.compile topo (Intent.pipe ~tenant:1 ~src:"gpu0" ~dst ~rate:10e9) with
          | Ok [ r ] -> r
          | Ok _ | Error _ -> Alcotest.fail "compile failed"
        in
        let p1 =
          match Scheduler.place sched (compile "dimm0.0.0") with
          | Ok p -> p
          | Error e -> Alcotest.fail (Mgr_error.to_string e)
        in
        let p2 =
          match Scheduler.place sched (compile "dimm0.0.0") with
          | Ok p -> p
          | Error e -> Alcotest.fail (Mgr_error.to_string e)
        in
        (* second placement must avoid the first's saturated DDR channel
           only if capacity forces it; at 10e9 each on a 25.6e9 channel
           both fit, so check the ledger never exceeds the headroom *)
        List.iter
          (fun (_, fwd, rev) ->
            Alcotest.(check bool) "ledger sane" true (fwd <= 1.0 && rev <= 1.0))
          (Scheduler.utilization_summary sched);
        ignore (p1, p2));
    tc "hose reserves less than equivalent pipes (E9 shape)" (fun () ->
        let topo, _, _ = make_host () in
        (* hose: 10 GB/s at nic0 vs pipes: 5 GB/s to two DIMMs *)
        let hose_sched = Scheduler.create topo () in
        let hose_req =
          match
            Interpreter.compile topo
              (Intent.hose ~tenant:1 ~endpoint:"nic0" ~to_host:10e9 ~from_host:0.0)
          with
          | Ok rs -> rs
          | Error e -> Alcotest.fail (Mgr_error.to_string e)
        in
        (match Scheduler.place_all hose_sched hose_req with
        | Ok _ -> ()
        | Error e -> Alcotest.fail (Mgr_error.to_string e));
        let pipe_sched = Scheduler.create topo () in
        let pipe_reqs =
          List.concat_map
            (fun dst ->
              match
                Interpreter.compile topo (Intent.pipe ~tenant:1 ~src:"nic0" ~dst ~rate:5e9)
              with
              | Ok rs -> rs
              | Error e -> Alcotest.fail (Mgr_error.to_string e))
            [ "dimm0.0.0"; "dimm0.1.0" ]
        in
        (match Scheduler.place_all pipe_sched pipe_reqs with
        | Ok _ -> ()
        | Error e -> Alcotest.fail (Mgr_error.to_string e));
        Alcotest.(check bool) "hose cheaper" true
          (Scheduler.total_reserved hose_sched < Scheduler.total_reserved pipe_sched));
  ]

(* {1 Arbiter} *)

let arbiter_tests =
  [
    tc "attached flows get guaranteed floors" (fun () ->
        let topo, sim, fab = make_host () in
        let mgr = Manager.create fab () in
        (match
           Manager.submit mgr (Intent.pipe ~tenant:1 ~src:"ext" ~dst:"socket0" ~rate:5e9)
         with
        | Ok _ -> ()
        | Error e -> Alcotest.fail (Mgr_error.to_string e));
        let p = path fab "ext" "socket0" in
        let victim = E.Fabric.start_flow fab ~tenant:1 ~path:p ~size:E.Flow.Unbounded () in
        Alcotest.(check bool) "attached" true (Manager.attach mgr victim);
        (* aggressor floods the shared pcie subtree *)
        let agg = W.Rdma.start_loopback fab ~tenant:2 ~nic:"nic0" () in
        E.Sim.run ~until:(U.Units.ms 1.0) sim;
        Alcotest.(check bool) "floor honored under attack" true (victim.E.Flow.rate >= 5e9 *. 0.99);
        W.Rdma.stop_loopback agg;
        ignore topo);
    tc "floor is split among the placement's flows" (fun () ->
        let _, _, fab = make_host () in
        let mgr = Manager.create fab () in
        (match Manager.submit mgr (Intent.pipe ~tenant:1 ~src:"ext" ~dst:"socket0" ~rate:6e9) with
        | Ok _ -> ()
        | Error e -> Alcotest.fail (Mgr_error.to_string e));
        let p = path fab "ext" "socket0" in
        let f1 = E.Fabric.start_flow fab ~tenant:1 ~path:p ~size:E.Flow.Unbounded () in
        let f2 = E.Fabric.start_flow fab ~tenant:1 ~path:p ~size:E.Flow.Unbounded () in
        ignore (Manager.attach mgr f1);
        ignore (Manager.attach mgr f2);
        let arb = Manager.arbiter mgr in
        check_close ~eps:1.0 "half" 3e9 (Arbiter.guaranteed_of arb f1);
        check_close ~eps:1.0 "half" 3e9 (Arbiter.guaranteed_of arb f2));
    tc "non-work-conserving caps at the guarantee" (fun () ->
        let _, sim, fab = make_host () in
        let mgr = Manager.create fab () in
        let intent =
          {
            (Intent.pipe ~tenant:1 ~src:"ext" ~dst:"socket0" ~rate:2e9) with
            Intent.work_conserving = false;
          }
        in
        (match Manager.submit mgr intent with Ok _ -> () | Error e -> Alcotest.fail (Mgr_error.to_string e));
        let p = path fab "ext" "socket0" in
        let f = E.Fabric.start_flow fab ~tenant:1 ~path:p ~size:E.Flow.Unbounded () in
        ignore (Manager.attach mgr f);
        E.Sim.run ~until:(U.Units.us 10.0) sim;
        check_close ~eps:1e3 "capped" 2e9 f.E.Flow.rate);
    tc "work-conserving exceeds the floor when idle" (fun () ->
        let _, sim, fab = make_host () in
        let mgr = Manager.create fab () in
        (match Manager.submit mgr (Intent.pipe ~tenant:1 ~src:"ext" ~dst:"socket0" ~rate:2e9) with
        | Ok _ -> ()
        | Error e -> Alcotest.fail (Mgr_error.to_string e));
        let p = path fab "ext" "socket0" in
        let f = E.Fabric.start_flow fab ~tenant:1 ~path:p ~size:E.Flow.Unbounded () in
        ignore (Manager.attach mgr f);
        E.Sim.run ~until:(U.Units.us 10.0) sim;
        Alcotest.(check bool) "exceeds floor" true (f.E.Flow.rate > 10e9));
    tc "shim auto-attaches payload flows" (fun () ->
        let _, sim, fab = make_host () in
        let mgr = Manager.create fab () in
        Manager.start_shim mgr ~period:(U.Units.us 50.0);
        (match Manager.submit mgr (Intent.pipe ~tenant:1 ~src:"ext" ~dst:"socket0" ~rate:5e9) with
        | Ok _ -> ()
        | Error e -> Alcotest.fail (Mgr_error.to_string e));
        let p = path fab "ext" "socket0" in
        let f = E.Fabric.start_flow fab ~tenant:1 ~path:p ~size:E.Flow.Unbounded () in
        E.Sim.run ~until:(U.Units.us 200.0) sim;
        let arb = Manager.arbiter mgr in
        Alcotest.(check bool) "auto attached" true (Arbiter.guaranteed_of arb f > 0.0);
        Manager.stop_shim mgr);
    tc "detach returns a flow to best effort" (fun () ->
        let _, _, fab = make_host () in
        let mgr = Manager.create fab () in
        (match Manager.submit mgr (Intent.pipe ~tenant:1 ~src:"ext" ~dst:"socket0" ~rate:5e9) with
        | Ok _ -> ()
        | Error e -> Alcotest.fail (Mgr_error.to_string e));
        let p = path fab "ext" "socket0" in
        let f = E.Fabric.start_flow fab ~tenant:1 ~path:p ~size:E.Flow.Unbounded () in
        ignore (Manager.attach mgr f);
        Manager.detach mgr f;
        check_close "no floor" 0.0 (Arbiter.guaranteed_of (Manager.arbiter mgr) f);
        check_close "flow floor reset" 0.0 f.E.Flow.floor);
    tc "revoke releases placements and reservations" (fun () ->
        let _, _, fab = make_host () in
        let mgr = Manager.create fab () in
        (match Manager.submit mgr (Intent.pipe ~tenant:1 ~src:"ext" ~dst:"socket0" ~rate:5e9) with
        | Ok _ -> ()
        | Error e -> Alcotest.fail (Mgr_error.to_string e));
        Alcotest.(check bool) "placed" true (Manager.placements mgr <> []);
        Manager.revoke mgr ~tenant:1;
        Alcotest.(check (list int)) "no tenants" [] (Manager.tenants mgr);
        check_close "ledger empty" 0.0 (Scheduler.total_reserved (Manager.scheduler mgr)));
    tc "guarantees hold under flow churn" (fun () ->
        (* flows of the guaranteed tenant come and go every few hundred
           microseconds while an aggressor hammers the subtree; whenever
           the shim has caught up, the tenant's aggregate must be at its
           floor *)
        let _, sim, fab = make_host () in
        let mgr = Manager.create fab () in
        Manager.start_shim mgr ~period:(U.Units.us 50.0);
        (match Manager.submit mgr (Intent.pipe ~tenant:1 ~src:"ext" ~dst:"socket0" ~rate:6e9) with
        | Ok _ -> ()
        | Error e -> Alcotest.fail (Mgr_error.to_string e));
        let p =
          T.Path.concat (path fab "ext" "nic0") (path fab "nic0" "socket0")
        in
        let agg = W.Rdma.start_loopback fab ~tenant:2 ~nic:"nic0" () in
        let live = ref [] in
        let rng = U.Rng.create 99 in
        let violations = ref 0 and samples = ref 0 in
        for _ = 1 to 40 do
          (* churn: flip a coin to add or remove a tenant-1 flow *)
          (if U.Rng.bool rng || !live = [] then
             live := E.Fabric.start_flow fab ~tenant:1 ~path:p ~size:E.Flow.Unbounded () :: !live
           else
             match !live with
             | f :: rest ->
               E.Fabric.stop_flow fab f;
               live := rest
             | [] -> ());
          E.Sim.run ~until:(E.Sim.now sim +. U.Units.us 200.0) sim;
          if !live <> [] then begin
            incr samples;
            let total =
              List.fold_left (fun acc (f : E.Flow.t) -> acc +. f.E.Flow.rate) 0.0 !live
            in
            if total < 6e9 *. 0.99 then incr violations
          end
        done;
        W.Rdma.stop_loopback agg;
        (* the shim needs one period to classify a newborn flow, so a few
           samples right after churn can be under; most must hold *)
        Alcotest.(check bool)
          (Printf.sprintf "floor held in %d/%d samples" (!samples - !violations) !samples)
          true
          (float_of_int !violations <= 0.2 *. float_of_int !samples));
    tc "reaction delay defers enforcement" (fun () ->
        let _, sim, fab = make_host () in
        let mgr = Manager.create fab ~reaction_delay:(U.Units.us 100.0) () in
        (match Manager.submit mgr (Intent.pipe ~tenant:1 ~src:"ext" ~dst:"socket0" ~rate:5e9) with
        | Ok _ -> ()
        | Error e -> Alcotest.fail (Mgr_error.to_string e));
        let p = path fab "ext" "socket0" in
        let f = E.Fabric.start_flow fab ~tenant:1 ~path:p ~size:E.Flow.Unbounded () in
        ignore (Manager.attach mgr f);
        check_close "not yet" 0.0 f.E.Flow.floor;
        E.Sim.run ~until:(U.Units.us 200.0) sim;
        Alcotest.(check bool) "applied later" true (f.E.Flow.floor > 0.0));
  ]

(* {1 Hose matching} *)

let hose_tests =
  [
    tc "to_host hose catches inbound flows of its endpoint only" (fun () ->
        let _, _, fab = make_host () in
        let mgr = Manager.create fab () in
        (match
           Manager.submit mgr (Intent.hose ~tenant:1 ~endpoint:"nic0" ~to_host:5e9 ~from_host:0.0)
         with
        | Ok _ -> ()
        | Error e -> Alcotest.fail (Mgr_error.to_string e));
        let via_nic0 = E.Fabric.start_flow fab ~tenant:1 ~path:(path fab "nic0" "socket0") ~size:E.Flow.Unbounded () in
        let via_nic1 = E.Fabric.start_flow fab ~tenant:1 ~path:(path fab "nic1" "socket0") ~size:E.Flow.Unbounded () in
        Alcotest.(check bool) "nic0 flow matches" true (Manager.attach mgr via_nic0);
        Alcotest.(check bool) "nic1 flow does not" false (Manager.attach mgr via_nic1));
    tc "from_host hose anchors on the endpoint-adjacent hop" (fun () ->
        let _, _, fab = make_host () in
        let mgr = Manager.create fab () in
        (match
           Manager.submit mgr (Intent.hose ~tenant:1 ~endpoint:"nic0" ~to_host:0.0 ~from_host:5e9)
         with
        | Ok _ -> ()
        | Error e -> Alcotest.fail (Mgr_error.to_string e));
        let out_nic0 = E.Fabric.start_flow fab ~tenant:1 ~path:(path fab "socket0" "nic0") ~size:E.Flow.Unbounded () in
        (* same socket, different endpoint: must NOT be charged to nic0's hose *)
        let out_gpu0 = E.Fabric.start_flow fab ~tenant:1 ~path:(path fab "socket0" "gpu0") ~size:E.Flow.Unbounded () in
        Alcotest.(check bool) "socket->nic0 matches" true (Manager.attach mgr out_nic0);
        Alcotest.(check bool) "socket->gpu0 does not" false (Manager.attach mgr out_gpu0));
    tc "other tenants never match a hose" (fun () ->
        let _, _, fab = make_host () in
        let mgr = Manager.create fab () in
        (match
           Manager.submit mgr (Intent.hose ~tenant:1 ~endpoint:"nic0" ~to_host:5e9 ~from_host:0.0)
         with
        | Ok _ -> ()
        | Error e -> Alcotest.fail (Mgr_error.to_string e));
        let foreign = E.Fabric.start_flow fab ~tenant:2 ~path:(path fab "nic0" "socket0") ~size:E.Flow.Unbounded () in
        Alcotest.(check bool) "no match" false (Manager.attach mgr foreign));
  ]

(* {1 Vnet} *)

let vnet_tests =
  [
    tc "vnet shows allocated capacity as link capacity" (fun () ->
        let _, _, fab = make_host () in
        let mgr = Manager.create fab () in
        (match Manager.submit mgr (Intent.pipe ~tenant:1 ~src:"nic1" ~dst:"socket0" ~rate:4e9) with
        | Ok _ -> ()
        | Error e -> Alcotest.fail (Mgr_error.to_string e));
        let v = Manager.vnet mgr ~tenant:1 in
        Alcotest.(check bool) "has devices" true (T.Topology.device_count v > 0);
        List.iter
          (fun (l : T.Link.t) -> check_close "capacity = allocation" 4e9 l.T.Link.capacity)
          (T.Topology.links v);
        (* the vnet is a normal topology: routing works in the illusion *)
        let nic = Option.get (T.Topology.device_by_name v "nic1") in
        let sock = Option.get (T.Topology.device_by_name v "socket0") in
        Alcotest.(check bool) "routable" true
          (T.Routing.reachable v nic.T.Device.id sock.T.Device.id));
    tc "other tenants are invisible in the vnet" (fun () ->
        let _, _, fab = make_host () in
        let mgr = Manager.create fab () in
        ignore (Manager.submit mgr (Intent.pipe ~tenant:1 ~src:"nic1" ~dst:"socket0" ~rate:4e9));
        ignore (Manager.submit mgr (Intent.pipe ~tenant:2 ~src:"gpu1" ~dst:"socket1" ~rate:4e9));
        let v1 = Manager.vnet mgr ~tenant:1 in
        Alcotest.(check bool) "no gpu1" true (T.Topology.device_by_name v1 "gpu1" = None));
    tc "migration compatibility to an identical host" (fun () ->
        let topo, _, fab = make_host () in
        let mgr = Manager.create fab () in
        ignore (Manager.submit mgr (Intent.pipe ~tenant:1 ~src:"nic1" ~dst:"socket0" ~rate:4e9));
        let dst = T.Builder.two_socket_server () in
        Alcotest.(check bool) "compatible" true
          (Vnet.migration_compatible ~src:topo ~dst_host:dst ~placements:(Manager.placements mgr)
             ~tenant:1);
        (* a minimal host lacks nic1: not compatible *)
        let tiny = T.Builder.minimal () in
        Alcotest.(check bool) "incompatible" false
          (Vnet.migration_compatible ~src:topo ~dst_host:tiny
             ~placements:(Manager.placements mgr) ~tenant:1));
  ]

(* {1 Capacity planner} *)

let planner_tests =
  [
    tc "a small deployment fits; an absurd one does not" (fun () ->
        let topo, _, _ = make_host () in
        let small = [ Intent.pipe ~tenant:1 ~src:"nic0" ~dst:"socket0" ~rate:1e9 ] in
        let absurd = [ Intent.pipe ~tenant:1 ~src:"nic0" ~dst:"socket0" ~rate:1e12 ] in
        Alcotest.(check bool) "fits" true (Planner.fits topo small);
        Alcotest.(check bool) "absurd" false (Planner.fits topo absurd));
    tc "max_scale finds the pcie ceiling" (fun () ->
        let topo, _, _ = make_host () in
        (* 1 GB/s through nic1's x16 slot: ceiling = 0.9 * 31.5 = 28.35x *)
        let deployment = [ Intent.pipe ~tenant:1 ~src:"nic1" ~dst:"socket0" ~rate:1e9 ] in
        let s = Planner.max_scale topo deployment in
        Alcotest.(check bool) "around 28x" true (s > 26.0 && s < 30.0));
    tc "max_scale below 1 flags over-commitment" (fun () ->
        let topo, _, _ = make_host () in
        let deployment = [ Intent.pipe ~tenant:1 ~src:"nic1" ~dst:"socket0" ~rate:40e9 ] in
        let s = Planner.max_scale topo deployment in
        Alcotest.(check bool) "below 1" true (s > 0.0 && s < 1.0));
    tc "unroutable intents scale to zero" (fun () ->
        let topo, _, _ = make_host () in
        let deployment = [ Intent.pipe ~tenant:1 ~src:"nope" ~dst:"socket0" ~rate:1e9 ] in
        Alcotest.(check (float 0.0)) "zero" 0.0 (Planner.max_scale topo deployment));
    tc "bottlenecks name the hottest link" (fun () ->
        let topo, _, _ = make_host () in
        let deployment = [ Intent.pipe ~tenant:1 ~src:"nic1" ~dst:"socket0" ~rate:20e9 ] in
        match Planner.bottlenecks topo deployment with
        | (link, ratio) :: _ ->
          (* the x16 slot is by far the tightest *)
          Alcotest.(check bool) "pcie first" true
            (match link.T.Link.kind with T.Link.Pcie _ -> true | _ -> false);
          Alcotest.(check bool) "ratio" true (ratio > 0.6)
        | [] -> Alcotest.fail "expected bottlenecks");
    tc "scale_intent multiplies every target" (fun () ->
        let i = Intent.hose ~tenant:1 ~endpoint:"nic0" ~to_host:2e9 ~from_host:1e9 in
        let scaled = Planner.scale_intent i 3.0 in
        check_close "total" 9e9 (Intent.total_guaranteed scaled));
  ]

(* {1 SLO tail-latency verdicts} *)

let slo_tests =
  let submit_bounded mgr bound =
    match
      Manager.submit mgr
        {
          (Intent.pipe ~tenant:1 ~src:"ext" ~dst:"socket0" ~rate:1e9) with
          Intent.p99_bound = Some bound;
        }
    with
    | Ok [ p ] -> p
    | Ok _ -> Alcotest.fail "expected one placement"
    | Error e -> Alcotest.fail (Mgr_error.to_string e)
  in
  let one_entry mgr =
    match (Slo.check mgr).Slo.entries with
    | [ e ] -> e
    | es -> Alcotest.failf "expected one entry, got %d" (List.length es)
  in
  [
    tc "sketch-observed p99 closes the tail-latency loop" (fun () ->
        let _, sim, fab = make_host () in
        E.Fabric.enable_latency_sketches fab;
        let mgr = Manager.create fab () in
        let bound = U.Units.us 50.0 in
        let p = submit_bounded mgr bound in
        (* demand pinned at the guarantee: an elastic flow would saturate
           the path and honestly blow the 50us bound on queueing alone *)
        let f =
          E.Fabric.start_flow fab ~tenant:1 ~demand:1e9 ~path:p.Placement.path
            ~size:E.Flow.Unbounded ()
        in
        ignore (Manager.attach mgr f);
        E.Sim.run ~until:(U.Units.ms 1.0) sim;
        let e = one_entry mgr in
        Alcotest.(check bool) "sketches observed the path" true (e.Slo.observed_p99 <> None);
        Alcotest.(check bool) "met within bound" true (e.Slo.state = Slo.Met);
        (* pollute the first hop's sketch far past the bound: the verdict
           must flip on the observed percentile, no fault needed *)
        let h = List.hd p.Placement.path.T.Path.hops in
        (match E.Fabric.link_latency_sketch fab h.T.Path.link.T.Link.id h.T.Path.dir with
        | Some sk -> for _ = 1 to 1000 do U.Sketch.record sk (U.Units.us 500.0) done
        | None -> Alcotest.fail "sketch plane missing");
        let e = one_entry mgr in
        (match e.Slo.state with
        | Slo.Violated why ->
          Alcotest.(check bool) "verdict names the observed p99" true
            (String.length why >= 12 && String.sub why 0 12 = "observed p99")
        | _ -> Alcotest.fail "expected a tail violation");
        match e.Slo.observed_p99 with
        | Some obs -> Alcotest.(check bool) "beyond bound" true (obs > bound)
        | None -> Alcotest.fail "no observed p99 in the entry");
    tc "dormant plane falls back to the instantaneous estimate" (fun () ->
        let _, sim, fab = make_host () in
        let mgr = Manager.create fab () in
        let p = submit_bounded mgr (U.Units.ms 1.0) in
        let f =
          E.Fabric.start_flow fab ~tenant:1 ~demand:1e9 ~path:p.Placement.path
            ~size:E.Flow.Unbounded ()
        in
        ignore (Manager.attach mgr f);
        E.Sim.run ~until:(U.Units.ms 1.0) sim;
        let e = one_entry mgr in
        Alcotest.(check bool) "no sketch observation" true (e.Slo.observed_p99 = None);
        Alcotest.(check bool) "still judged, and met" true (e.Slo.state = Slo.Met));
  ]

(* {1 Policies} *)

let policy_tests =
  [
    tc "static partition caps memory-crossing flows only" (fun () ->
        let _, sim, fab = make_host () in
        let handle =
          Policy.install fab (Policy.Static_partition { tenants = [ 1; 2 ] })
            ~period:(U.Units.us 50.0)
        in
        let mem_flow =
          E.Fabric.start_flow fab ~tenant:1 ~path:(path fab "ext" "dimm0.0.0")
            ~size:E.Flow.Unbounded ()
        in
        let pcie_flow =
          E.Fabric.start_flow fab ~tenant:2 ~path:(path fab "gpu0" "nic0") ~size:E.Flow.Unbounded ()
        in
        E.Sim.run ~until:(U.Units.us 500.0) sim;
        Alcotest.(check bool) "memory flow capped" true (mem_flow.E.Flow.cap < infinity);
        Alcotest.(check bool) "pcie flow untouched" true (pcie_flow.E.Flow.cap = infinity);
        Policy.uninstall handle);
    tc "labels" (fun () ->
        Alcotest.(check string) "nm" "no-mgmt" (Policy.label Policy.No_management);
        Alcotest.(check string) "sp" "static-partition"
          (Policy.label (Policy.Static_partition { tenants = [] })));
  ]

let suites =
  [
    ("manager.intent", intent_tests);
    ("manager.interpreter", interpreter_tests);
    ("manager.scheduler", scheduler_tests);
    ("manager.arbiter", arbiter_tests);
    ("manager.hose", hose_tests);
    ("manager.vnet", vnet_tests);
    ("manager.planner", planner_tests);
    ("manager.slo", slo_tests);
    ("manager.policy", policy_tests);
  ]
