(* Soak test: 200 simulated milliseconds of everything at once —
   monitoring, heartbeats, managed and unmanaged tenants, churn, and
   faults injected and repaired mid-flight. The assertions are global
   invariants, not scenario specifics: capacity conservation, telemetry
   liveness, fault detection and recovery, guarantee compliance, and a
   clean teardown. *)

module E = Ihnet_engine
module T = Ihnet_topology
module U = Ihnet_util
module W = Ihnet_workload
module Mon = Ihnet_monitor
module R = Ihnet_manager
module Rec = Ihnet_record

let tc name f = Alcotest.test_case name `Quick f

(* On any failure inside [f], dump the flight-recorder buffer as a
   replayable repro trace before letting the exception escape. *)
let with_repro name f =
  let buf = Buffer.create 65536 in
  try f buf
  with e ->
    let path = Printf.sprintf "soak_repro_%s.jsonl" name in
    Out_channel.with_open_text path (fun oc ->
        Out_channel.output_string oc (Buffer.contents buf));
    Printf.eprintf "soak %s failed; repro trace written to %s\n%!" name path;
    raise e

let soak ?record_buf () =
  let host = Ihnet.Host.create ~seed:1234 Ihnet.Host.Two_socket in
  let fab = Ihnet.Host.fabric host in
  let recorder =
    Option.map
      (fun buf ->
        Rec.Recorder.attach ~digest_every:256 ~label:"soak" ~seed:1234
          ~sink:(Rec.Recorder.buffer_sink buf) fab)
      record_buf
  in
  let sim = Ihnet.Host.sim host in
  let topo = Ihnet.Host.topology host in
  let rng = U.Rng.create 77 in
  (* monitoring stack *)
  let sampler =
    Ihnet.Host.start_monitoring host
      ~wiring:
        {
          Ihnet.Host.default_wiring with
          Ihnet.Host.sampler =
            Some
              {
                (Mon.Sampler.default_config ()) with
                Mon.Sampler.period = U.Units.us 200.0;
                fidelity = Mon.Counter.Oracle;
              };
        }
      ()
  in
  let hb = Ihnet.Host.start_heartbeats host () in
  (* manager with one protected tenant *)
  let mgr = Ihnet.Host.enable_manager host () in
  (match
     Ihnet.Host.submit_intent host
       (R.Intent.pipe ~tenant:1 ~src:"ext" ~dst:"socket0" ~rate:(U.Units.gbps 4.0))
   with
  | Ok _ -> ()
  | Error e -> Alcotest.fail (R.Mgr_error.to_string e));
  (* steady workloads *)
  let kv = W.Kvstore.start fab (W.Kvstore.default_config ~tenant:1 ~nic:"nic0") in
  let ml =
    W.Mltrain.start fab
      {
        (W.Mltrain.default_config ~tenant:2 ~gpu:"gpu0" ~data_source:"dimm0.0.0") with
        W.Mltrain.compute_time = U.Units.ms 1.0;
      }
  in
  let st = W.Storage.start fab (W.Storage.default_config ~tenant:3 ~ssd:"ssd1" ~target:"dimm1.0.0") in
  let ar =
    W.Allreduce.start fab
      { W.Allreduce.tenant = 4; ring = [ "gpu0"; "gpu1" ]; data_bytes = U.Units.mib 32.0; iterations = 1000 }
  in
  (* a fault that appears at 60 ms and is repaired at 120 ms *)
  let bad_link =
    match T.Topology.links_between topo
            (Option.get (T.Topology.device_by_name topo "rp1.0")).T.Device.id
            (Option.get (T.Topology.device_by_name topo "pciesw1")).T.Device.id
    with
    | l :: _ -> l.T.Link.id
    | [] -> Alcotest.fail "no rp1.0-pciesw1 link"
  in
  E.Sim.schedule sim ~after:(U.Units.ms 60.0) (fun _ ->
      E.Fabric.inject_fault fab bad_link
        { E.Fault.capacity_factor = 0.5; extra_latency = U.Units.us 3.0; loss_prob = 0.0 });
  E.Sim.schedule sim ~after:(U.Units.ms 120.0) (fun _ -> E.Fabric.clear_fault fab bad_link);
  (* tenant churn: short bulk transfers appearing at random *)
  let churn_path =
    Option.get
      (T.Routing.shortest_path topo
         (Option.get (T.Topology.device_by_name topo "nic2")).T.Device.id
         (Option.get (T.Topology.device_by_name topo "dimm1.1.0")).T.Device.id)
  in
  let rec churn _ =
    if E.Sim.now sim < U.Units.ms 190.0 then begin
      ignore
        (E.Fabric.start_flow fab ~tenant:(5 + U.Rng.int rng 3) ~path:churn_path
           ~size:(E.Flow.Bytes (U.Rng.uniform rng 1e6 5e7)) ());
      E.Sim.schedule sim ~after:(U.Rng.exponential rng (U.Units.ms 3.0)) churn
    end
  in
  E.Sim.schedule sim ~after:0.0 churn;
  (* run, checking conservation every 10 ms and sampling heartbeat
     health so the fault era (60-120 ms) can be checked afterwards *)
  let conservation_ok = ref true in
  let sick_during_fault = ref false in
  for step = 1 to 20 do
    Ihnet.Host.run_for host (U.Units.ms 10.0);
    if step > 6 && step <= 12 && not (Mon.Heartbeat.healthy hb) then
      sick_during_fault := true;
    List.iter
      (fun (l : T.Link.t) ->
        List.iter
          (fun dir ->
            let rate = E.Fabric.link_rate fab l.T.Link.id dir in
            let cap = E.Fabric.effective_capacity fab l.T.Link.id dir in
            if rate > (cap *. 1.001) +. 1.0 then conservation_ok := false)
          [ T.Link.Fwd; T.Link.Rev ])
      (T.Topology.links topo)
  done;
  Option.iter Rec.Recorder.stop recorder;
  (host, fab, sampler, hb, mgr, kv, ml, st, ar, !conservation_ok, !sick_during_fault)

let soak_tests =
  [
    tc "200 ms of everything at once upholds the global invariants" (fun () ->
        with_repro "everything" @@ fun buf ->
        let host, fab, sampler, hb, mgr, kv, ml, st, ar, conservation_ok, sick_during_fault =
          soak ~record_buf:buf ()
        in
        (* capacity conservation held at every checkpoint *)
        Alcotest.(check bool) "conservation" true conservation_ok;
        (* all workloads made progress *)
        Alcotest.(check bool) "kv sampled" true (U.Histogram.count (W.Kvstore.latencies kv) > 1000);
        Alcotest.(check bool) "ml progressed" true (W.Mltrain.iterations_done ml >= 10);
        Alcotest.(check bool) "storage progressed" true (W.Storage.completed_ops st > 500);
        Alcotest.(check bool) "allreduce progressed" true (W.Allreduce.iterations_done ar >= 10);
        (* monitoring stayed alive and saw the fault *)
        Alcotest.(check bool) "sampler ticked" true (Mon.Sampler.ticks sampler > 900);
        Alcotest.(check bool) "fault era flagged by heartbeats" true sick_during_fault;
        Alcotest.(check bool) "recovered after repair" true (Mon.Heartbeat.healthy hb);
        (* the protected tenant's SLO held at the end *)
        let report = R.Slo.check mgr in
        Alcotest.(check bool) "tenant 1 compliant" true (R.Slo.tenant_compliant report ~tenant:1);
        (* teardown drains cleanly *)
        W.Kvstore.stop kv;
        W.Mltrain.stop ml;
        W.Storage.stop st;
        W.Allreduce.stop ar;
        Mon.Heartbeat.stop hb;
        Mon.Sampler.stop sampler;
        R.Manager.stop_shim mgr;
        Ihnet.Host.run_for host (U.Units.ms 20.0);
        let leftover =
          List.filter
            (fun (f : E.Flow.t) -> f.E.Flow.cls = E.Flow.Payload)
            (E.Fabric.active_flows fab)
        in
        Alcotest.(check int) "no leaked payload flows" 0 (List.length leftover));
  ]

(* High-churn soak: ~10k flow starts/stops against a dgx-like host,
   stressing the incremental (component-scoped) reallocation path: local
   GPU->NIC flows keep components disjoint, cross-switch flows weld them
   together, and LLC-targeted flows drag the DDIO coupling and the
   memory links into the mix. Completions drain through the completion
   heap while the sim advances. Invariants checked at every
   checkpoint: per-link conservation (Σ rates ≤ effective capacity) and
   the one protected flow's floor. *)

let high_churn ?record_buf () =
  let topo = T.Builder.dgx_like () in
  let sim = E.Sim.create () in
  let fab = E.Fabric.create ~seed:7 sim topo in
  let recorder =
    Option.map
      (fun buf ->
        Rec.Recorder.attach ~digest_every:1024 ~label:"soak-churn" ~seed:7
          ~sink:(Rec.Recorder.buffer_sink buf) fab)
      record_buf
  in
  let rng = U.Rng.create 9 in
  let dev n = (Option.get (T.Topology.device_by_name topo n)).T.Device.id in
  let path a b = Option.get (T.Routing.shortest_path topo (dev a) (dev b)) in
  let local =
    Array.init 8 (fun i -> path (Printf.sprintf "gpu%d" i) (Printf.sprintf "nic%d" i))
  in
  let cross =
    Array.init 8 (fun i -> path (Printf.sprintf "gpu%d" i) (Printf.sprintf "nic%d" ((i + 5) mod 8)))
  in
  let llc =
    Array.init 8 (fun i -> path (Printf.sprintf "gpu%d" i) (Printf.sprintf "socket%d" (i / 4)))
  in
  let floor = U.Units.gbps 2.0 in
  let protected_flow =
    E.Fabric.start_flow fab ~tenant:1 ~floor ~path:local.(0) ~size:E.Flow.Unbounded ()
  in
  let completed = ref 0 in
  let live = Queue.create () in
  let violations = ref 0 in
  let check () =
    List.iter
      (fun (l : T.Link.t) ->
        List.iter
          (fun dir ->
            let rate = E.Fabric.link_rate fab l.T.Link.id dir in
            let cap = E.Fabric.effective_capacity fab l.T.Link.id dir in
            if rate > (cap *. 1.001) +. 1.0 then incr violations)
          [ T.Link.Fwd; T.Link.Rev ])
      (T.Topology.links topo);
    if protected_flow.E.Flow.rate < floor *. 0.999 then incr violations
  in
  let n_ops = 10_000 in
  for i = 1 to n_ops do
    let r = U.Rng.int rng 100 in
    let p =
      if r < 70 then local.(U.Rng.int rng 8)
      else if r < 90 then cross.(U.Rng.int rng 8)
      else llc.(U.Rng.int rng 8)
    in
    let size =
      if U.Rng.int rng 4 = 0 then E.Flow.Unbounded
      else E.Flow.Bytes (U.Rng.uniform rng 1e5 2e6)
    in
    let f =
      E.Fabric.start_flow fab
        ~tenant:(2 + (i mod 15))
        ~weight:(1.0 +. float_of_int (i mod 4))
        ~llc_target:(r >= 90)
        ~on_complete:(fun _ -> incr completed)
        ~path:p ~size ()
    in
    Queue.push f live;
    if Queue.length live > 192 then E.Fabric.stop_flow fab (Queue.pop live);
    if i mod 16 = 0 then E.Sim.run ~until:(E.Sim.now sim +. U.Units.us 50.0) sim;
    if i mod 500 = 0 then check ()
  done;
  Queue.iter (fun f -> E.Fabric.stop_flow fab f) live;
  E.Sim.run ~until:(E.Sim.now sim +. U.Units.ms 5.0) sim;
  check ();
  Option.iter Rec.Recorder.stop recorder;
  (fab, protected_flow, !violations, !completed)

let high_churn_tests =
  [
    tc "10k-flow churn on a dgx keeps conservation and floors" (fun () ->
        with_repro "churn" @@ fun buf ->
        let fab, protected_flow, violations, completed = high_churn ~record_buf:buf () in
        Alcotest.(check int) "no conservation or floor violations" 0 violations;
        Alcotest.(check bool) "completions drained through the heap" true (completed > 100);
        Alcotest.(check bool) "reallocations happened" true (E.Fabric.reallocations fab > 10_000);
        (* everything stopped or completed except the protected flow *)
        Alcotest.(check int) "only the protected flow is left" 1 (E.Fabric.flow_count fab);
        E.Fabric.stop_flow fab protected_flow;
        Alcotest.(check int) "teardown drains" 0 (E.Fabric.flow_count fab));
  ]

let suites = [ ("soak", soak_tests); ("soak.churn", high_churn_tests) ]
