(* Compile-check for the README's quickstart snippet: if the README
   code drifts from the API, this file stops building. Not meant to be
   run (it is, harmlessly, a 20 ms simulation). *)

open Ihnet

let host = Host.create Host.Two_socket
let rtt = Option.get (Host.ping host ~src:"nic0" ~dst:"dimm0.0.0")
let hops = Host.trace host ~src:"ext" ~dst:"gpu0"
let bw = Host.bandwidth host ~src:"gpu0" ~dst:"ssd0"
let tenant = Host.add_tenant host ~name:"kv"
let kv = Kvstore.start (Host.fabric host)
           (Kvstore.default_config ~tenant:tenant.Tenant.id ~nic:"nic0")
let () = Host.run_for host (Units.ms 20.0)
let placements = Host.submit_intent host
    (Intent.pipe ~tenant:tenant.Tenant.id ~src:"ext" ~dst:"socket0"
       ~rate:(Units.gbps 4.0))
let () = ignore (rtt, hops, bw, kv, placements)
