(* A multi-tenant DGX-like box: four training tenants with hose
   guarantees, per-tenant virtual network views, and a live migration
   compatibility check against a smaller host (§3.2's virtualized
   abstraction).

   Run with: dune exec examples/multi_tenant_dgx.exe *)

open Ihnet
module T = Ihnet_topology
module U = Ihnet_util
module W = Ihnet_workload
module R = Ihnet_manager

let () =
  let host = Host.create Host.Dgx in
  Printf.printf "host: %s\n\n" (T.Topology.summary (Host.topology host));
  let mgr = Host.enable_manager host () in

  (* four tenants, one GPU pair each, hose guarantees at their NICs *)
  let tenants =
    List.map
      (fun i ->
        let t = Host.add_tenant host ~name:(Printf.sprintf "team%d" i) in
        let nic = Printf.sprintf "nic%d" (2 * i) in
        (match
           R.Manager.submit mgr
             (R.Intent.hose ~tenant:t.W.Tenant.id ~endpoint:nic ~to_host:(U.Units.gbps 50.0)
                ~from_host:(U.Units.gbps 50.0))
         with
        | Ok _ -> Printf.printf "tenant %s: hose 50/50 Gbps at %s admitted\n" t.W.Tenant.name nic
        | Error e ->
          Printf.printf "tenant %s: REJECTED (%s)\n" t.W.Tenant.name
            (Manager.error_to_string e));
        t)
      [ 0; 1; 2; 3 ]
  in

  (* everyone trains *)
  let trainers =
    List.mapi
      (fun i t ->
        W.Mltrain.start (Host.fabric host)
          {
            (W.Mltrain.default_config ~tenant:t.W.Tenant.id
               ~gpu:(Printf.sprintf "gpu%d" (2 * i))
               ~data_source:"dimm0.0.0") with
            W.Mltrain.batch_bytes = U.Units.mib 64.0;
            compute_time = U.Units.ms 2.0;
            sync = Some (Printf.sprintf "nic%d" (2 * i), U.Units.mib 16.0);
          })
      tenants
  in
  Host.run_for host (U.Units.ms 60.0);
  print_newline ();
  List.iteri
    (fun i tr ->
      let times = W.Mltrain.iteration_times tr in
      Format.printf "team%d: %d iterations, median %a@." i (W.Mltrain.iterations_done tr)
        U.Units.pp_time
        (U.Histogram.percentile times 0.5))
    trainers;

  (* each tenant's virtual view *)
  print_newline ();
  List.iter
    (fun (t : W.Tenant.t) ->
      let vnet = R.Manager.vnet mgr ~tenant:t.W.Tenant.id in
      Printf.printf "vnet of %s: %s\n" t.W.Tenant.name (T.Topology.summary vnet))
    tenants;

  (* can team0 migrate to the smaller Figure-1 server? *)
  let dst = T.Builder.two_socket_server () in
  let t0 = List.hd tenants in
  Printf.printf "\nmigration of %s to the two-socket host: %s\n" t0.W.Tenant.name
    (if
       R.Vnet.migration_compatible ~src:(Host.topology host) ~dst_host:dst
         ~placements:(R.Manager.placements mgr) ~tenant:t0.W.Tenant.id
     then "compatible"
     else "NOT compatible (device or capacity mismatch)");
  List.iter W.Mltrain.stop trainers
