(* Fleet roll-up: the centralized network-state service view of §3.1.
   Three hosts — one quiet, one under attack, one misconfigured — and
   the collector ranks who needs attention.

   Run with: dune exec examples/fleet_rollup.exe *)

open Ihnet
module E = Ihnet_engine
module T = Ihnet_topology
module U = Ihnet_util
module W = Ihnet_workload
module Mon = Ihnet_monitor

let member label ~config ~load =
  let host = Host.create ~config Host.Two_socket in
  let fab = Host.fabric host in
  if load then begin
    ignore (W.Rdma.start_loopback fab ~tenant:3 ~nic:"nic0" ());
    ignore
      (W.Mltrain.start fab
         {
           (W.Mltrain.default_config ~tenant:4 ~gpu:"gpu0" ~data_source:"dimm0.0.0") with
           W.Mltrain.compute_time = 0.0;
         })
  end;
  Host.run_for host (U.Units.ms 2.0);
  {
    Mon.Fleet.label;
    counter = Mon.Counter.create fab ~fidelity:Mon.Counter.Oracle;
    tenants = [ 3; 4 ];
    slo = None;
  }

let () =
  let bad_config =
    {
      T.Hostconfig.default with
      T.Hostconfig.ddio = T.Hostconfig.Ddio_off;
      pcie_mps = 128;
      interrupt_moderation = U.Units.us 50.0;
    }
  in
  let members =
    [
      member "rack3-node01" ~config:T.Hostconfig.default ~load:false;
      member "rack3-node02" ~config:T.Hostconfig.default ~load:true;
      member "rack3-node03" ~config:bad_config ~load:false;
    ]
  in
  let fleet = Mon.Fleet.collect ~round:1 members in
  Format.printf "%a@." Mon.Fleet.pp fleet;
  print_endline "details of the hosts needing attention:";
  List.iter
    (fun (s : Mon.Fleet.host_status) ->
      Printf.printf "\n-- %s --\n" s.Mon.Fleet.label;
      Format.printf "%a" Mon.Health.pp s.Mon.Fleet.health;
      List.iter (Printf.printf "  finding: %s\n") s.Mon.Fleet.config_findings)
    (Mon.Fleet.needs_attention fleet)
