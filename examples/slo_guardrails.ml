(* SLO guardrails: intents in, compliance report out — and what a
   silent hardware fault does to it. Combines the manager's SLO checker
   with the monitor's health report: the operator's daily view.

   Run with: dune exec examples/slo_guardrails.exe *)

open Ihnet
module E = Ihnet_engine
module T = Ihnet_topology
module U = Ihnet_util
module Mon = Ihnet_monitor
module R = Ihnet_manager

let () =
  let host = Host.create Host.Two_socket in
  let fab = Host.fabric host in
  let mgr = Host.enable_manager host () in

  (* two tenants with guarantees; tenant 1 also carries a latency SLO *)
  let submit intent =
    match R.Manager.submit mgr intent with
    | Ok _ -> ()
    | Error e -> failwith ("intent rejected: " ^ Manager.error_to_string e)
  in
  submit
    {
      (R.Intent.pipe ~tenant:1 ~src:"nic1" ~dst:"socket0" ~rate:(U.Units.gbps 40.0)) with
      R.Intent.latency_bound = Some (U.Units.us 1.0);
    };
  submit (R.Intent.hose ~tenant:2 ~endpoint:"nic0" ~to_host:(U.Units.gbps 60.0) ~from_host:0.0);

  (* their traffic *)
  let topo = Host.topology host in
  let dev n = (Option.get (T.Topology.device_by_name topo n)).T.Device.id in
  let route a b = Option.get (T.Routing.shortest_path topo (dev a) (dev b)) in
  ignore
    (E.Fabric.start_flow fab ~tenant:1 ~demand:(U.Units.gbps 30.0) ~llc_target:true
       ~path:(route "nic1" "socket0") ~size:E.Flow.Unbounded ());
  ignore
    (E.Fabric.start_flow fab ~tenant:2 ~demand:(U.Units.gbps 50.0) ~llc_target:true
       ~path:(route "nic0" "socket0") ~size:E.Flow.Unbounded ());
  Host.run_for host (U.Units.ms 5.0);

  print_endline "healthy fabric:";
  Format.printf "%a@." R.Slo.pp (R.Slo.check mgr);

  (* a silent fault on tenant 1's root-port link: +4 us, no counter *)
  let bad =
    match T.Topology.links_between topo (dev "rp0.1") (dev "nic1") with
    | l :: _ -> l
    | [] -> failwith "no rp0.1-nic1 link"
  in
  Format.printf "[silent fault injected: +4 us on %s]@.@."
    (T.Link.kind_label bad.T.Link.kind);
  E.Fabric.inject_fault fab bad.T.Link.id
    { E.Fault.capacity_factor = 1.0; extra_latency = U.Units.us 4.0; loss_prob = 0.0 };
  Host.run_for host (U.Units.ms 5.0);

  print_endline "after the silent fault:";
  let report = R.Slo.check mgr in
  Format.printf "%a@." R.Slo.pp report;
  Printf.printf "tenant 1 compliant: %b, tenant 2 compliant: %b\n\n"
    (R.Slo.tenant_compliant report ~tenant:1)
    (R.Slo.tenant_compliant report ~tenant:2);

  (* the operator pulls a health report to see what the counters say *)
  print_endline "operator's health report (oracle counters):";
  let counter = Mon.Counter.create fab ~fidelity:Mon.Counter.Oracle in
  Format.printf "%a" Mon.Health.pp (Mon.Health.collect counter ~tenants:[ 1; 2 ] ())
