(* The paper's §3.1 motivating case, live: a PCIe switch silently
   degrades — no error counter fires, throughput counters look normal —
   and the heartbeat mesh catches and localizes it.

   Run with: dune exec examples/failure_localization.exe *)

open Ihnet
module E = Ihnet_engine
module T = Ihnet_topology
module U = Ihnet_util
module Mon = Ihnet_monitor

let () =
  let host = Host.create Host.Two_socket in
  let fab = Host.fabric host in
  let topo = Host.topology host in

  (* background traffic so the host looks alive *)
  let dev n = (Option.get (T.Topology.device_by_name topo n)).T.Device.id in
  let path = Option.get (T.Routing.shortest_path topo (dev "nic0") (dev "socket0")) in
  ignore
    (E.Fabric.start_flow fab ~tenant:1 ~demand:10e9 ~llc_target:true ~path ~size:E.Flow.Unbounded
       ());

  print_endline "starting heartbeat mesh (1 ms rounds, all endpoints)";
  let hb = Host.start_heartbeats host () in
  Host.run_for host (U.Units.ms 10.0);
  Printf.printf "after 10 ms: %d rounds, %d failing pairs\n" (Mon.Heartbeat.rounds hb)
    (List.length (Mon.Heartbeat.failing_pairs hb));

  (* inject: the switch's upstream link silently adds 5 us per crossing *)
  let bad =
    match T.Topology.links_between topo (dev "rp0.0") (dev "pciesw0") with
    | [ l ] -> l
    | _ -> failwith "expected one rp0.0-pciesw0 link"
  in
  Format.printf "\n[fault injected at t=%a: +5 us on the %s link — silently]@.@."
    U.Units.pp_time (Host.now host)
    (T.Link.kind_label bad.T.Link.kind);
  E.Fabric.inject_fault fab bad.T.Link.id
    { E.Fault.capacity_factor = 1.0; extra_latency = U.Units.us 5.0; loss_prob = 0.0 };

  Host.run_for host (U.Units.ms 10.0);
  (match Mon.Heartbeat.first_detection hb with
  | Some at -> Format.printf "heartbeats detected the anomaly at t=%a@." U.Units.pp_time at
  | None -> print_endline "heartbeats saw nothing (unexpected)");
  Printf.printf "failing probe pairs this round: %d\n"
    (List.length (Mon.Heartbeat.failing_pairs hb));

  print_endline "\nlocalization (boolean tomography over probe paths):";
  List.iteri
    (fun i (s : Mon.Heartbeat.suspect) ->
      let l = T.Topology.link topo s.Mon.Heartbeat.link in
      let a = (T.Topology.device topo l.T.Link.a).T.Device.name in
      let b = (T.Topology.device topo l.T.Link.b).T.Device.name in
      Printf.printf "  #%d  link %s-%s  covers %d bad paths (score %.2f)%s\n" (i + 1) a b
        s.Mon.Heartbeat.bad_paths_covered s.Mon.Heartbeat.score
        (if s.Mon.Heartbeat.link = bad.T.Link.id then "   <- the injected fault" else ""))
    (Mon.Heartbeat.localize hb);

  (* the operator confirms with ihtrace *)
  print_endline "\noperator confirms with ihtrace nic0 -> socket0:";
  List.iter
    (fun (h : Mon.Diagnostics.trace_hop) ->
      Format.printf "  -> %-10s base %a now %a %s@." h.Mon.Diagnostics.hop_device
        U.Units.pp_time h.Mon.Diagnostics.base_latency U.Units.pp_time
        h.Mon.Diagnostics.loaded_latency
        (if h.Mon.Diagnostics.loaded_latency > 10.0 *. h.Mon.Diagnostics.base_latency then
           "<- anomalous"
         else ""))
    (Host.trace host ~src:"nic0" ~dst:"socket0");
  Mon.Heartbeat.stop hb
