(* The paper's §2 story, live: a latency-sensitive KV store and a
   bandwidth-hungry ML trainer share a PCIe root port. The monitor's
   root-cause analysis names the aggressor; an intent then isolates the
   victim.

   Run with: dune exec examples/interference_and_isolation.exe *)

open Ihnet
module T = Ihnet_topology
module U = Ihnet_util
module W = Ihnet_workload
module Mon = Ihnet_monitor
module R = Ihnet_manager

(* report then reset, so each phase's percentiles are its own *)
let kv_report label kv =
  let lat = W.Kvstore.latencies kv in
  Format.printf "%-28s p50 %a p99 %a (%.0fk req/s)@." label U.Units.pp_time
    (U.Histogram.percentile lat 0.5)
    U.Units.pp_time
    (U.Histogram.percentile lat 0.99)
    (W.Kvstore.achieved_rate kv /. 1e3);
  U.Histogram.clear lat

let () =
  let host = Host.create Host.Two_socket in
  let fab = Host.fabric host in
  let kv_tenant = (Host.add_tenant host ~name:"kv").W.Tenant.id in
  let ml_tenant = (Host.add_tenant host ~name:"ml").W.Tenant.id in

  print_endline "phase 1: the kv store alone";
  let kv = W.Kvstore.start fab (W.Kvstore.default_config ~tenant:kv_tenant ~nic:"nic0") in
  Host.run_for host (U.Units.ms 15.0);
  kv_report "  kv alone:" kv;

  print_endline "\nphase 2: an ML trainer starts on gpu0 (same root port)";
  let ml =
    W.Mltrain.start fab
      {
        (W.Mltrain.default_config ~tenant:ml_tenant ~gpu:"gpu0" ~data_source:"dimm0.0.0") with
        W.Mltrain.compute_time = 0.0;
        loader_streams = 3;
      }
  in
  let counter = Mon.Counter.create fab ~fidelity:Mon.Counter.Software in
  let before = Mon.Rootcause.snapshot counter ~tenants:[ kv_tenant; ml_tenant ] in
  Host.run_for host (U.Units.ms 15.0);
  kv_report "  kv under interference:" kv;

  print_endline "\nphase 3: the operator debugs with root-cause analysis";
  let after = Mon.Rootcause.snapshot counter ~tenants:[ kv_tenant; ml_tenant ] in
  let topo = Host.topology host in
  let request_path =
    let dev n = (Option.get (T.Topology.device_by_name topo n)).T.Device.id in
    T.Path.concat
      (Option.get (T.Routing.shortest_path topo (dev "ext") (dev "nic0")))
      (Option.get (T.Routing.shortest_path topo (dev "nic0") (dev "socket0")))
  in
  (* diagnose the full round trip: the response direction matters too *)
  let round_trip =
    {
      request_path with
      T.Path.hops =
        request_path.T.Path.hops
        @ List.rev_map
            (fun (h : T.Path.hop) -> { h with T.Path.dir = T.Link.opposite h.T.Path.dir })
            request_path.T.Path.hops;
    }
  in
  let culprits = Mon.Rootcause.diagnose counter ~before ~after ~victim_path:round_trip in
  (match culprits with
  | top :: _ ->
    let link = T.Topology.link topo top.Mon.Rootcause.link in
    Format.printf "  most congested hop: %s (%.0f%% utilized)@."
      (T.Link.kind_label link.T.Link.kind)
      (top.Mon.Rootcause.utilization *. 100.0);
    List.iter
      (fun (tn, rate) ->
        Format.printf "    tenant %-3s moves %a@."
          (if tn = -1 then "ddio" else string_of_int tn)
          U.Units.pp_rate rate)
      top.Mon.Rootcause.contributors
  | [] -> print_endline "  no congestion found?!");
  (match Mon.Rootcause.top_aggressor culprits with
  | Some (tn, _) -> Printf.printf "  => aggressor is tenant %d (the ML trainer)\n" tn
  | None -> ());

  print_endline "\nphase 4: the kv tenant submits an intent; the arbiter isolates it";
  let mgr = Host.enable_manager host () in
  let intent =
    {
      (R.Intent.pipe ~tenant:kv_tenant ~src:"ext" ~dst:"socket0" ~rate:(U.Units.gbps 4.0)) with
      R.Intent.targets =
        [
          R.Intent.Pipe { src = "ext"; dst = "socket0"; rate = U.Units.gbps 4.0 };
          R.Intent.Pipe { src = "socket0"; dst = "ext"; rate = U.Units.gbps 4.0 };
        ];
    }
  in
  (match R.Manager.submit mgr intent with
  | Ok _ -> print_endline "  intent admitted"
  | Error e -> Printf.printf "  intent rejected: %s\n" (Manager.error_to_string e));
  Host.run_for host (U.Units.ms 15.0);
  kv_report "  kv under management:" kv;
  Printf.printf "  (ml trainer finished %d iterations meanwhile)\n"
    (W.Mltrain.iterations_done ml);
  W.Mltrain.stop ml;
  W.Kvstore.stop kv
