(* DDIO cache thrashing (§2): inbound DMA from one fast NIC fits the
   LLC's I/O ways; add a second NIC and the ways thrash, silently
   multiplying memory-bus traffic. Toggling DDIO off shows the
   trade-off the configuration knob controls.

   Run with: dune exec examples/ddio_thrashing.exe *)

open Ihnet
module E = Ihnet_engine
module T = Ihnet_topology
module U = Ihnet_util

let show host label =
  let fab = Host.fabric host in
  Format.printf "%-24s ddio-write %a hit %3.0f%%  induced mem traffic %a@." label
    U.Units.pp_rate
    (E.Fabric.ddio_write_rate fab ~socket:0)
    (E.Fabric.ddio_hit_rate fab ~socket:0 *. 100.0)
    U.Units.pp_rate
    (E.Fabric.ddio_spill_rate fab ~socket:0)

let writer host nic =
  let topo = Host.topology host in
  let dev n = (Option.get (T.Topology.device_by_name topo n)).T.Device.id in
  let path = Option.get (T.Routing.shortest_path topo (dev nic) (dev "socket0")) in
  E.Fabric.start_flow (Host.fabric host) ~tenant:1 ~llc_target:true ~path ~size:E.Flow.Unbounded
    ()

let () =
  let host = Host.create Host.Two_socket in
  print_endline "DDIO on (default: 2 of 11 LLC ways for I/O):\n";
  let w1 = writer host "nic0" in
  Host.run_for host (U.Units.ms 1.0);
  show host "one NIC writing:";
  let w2 = writer host "nic1" in
  Host.run_for host (U.Units.ms 1.0);
  show host "two NICs writing:";
  E.Fabric.stop_flow (Host.fabric host) w1;
  E.Fabric.stop_flow (Host.fabric host) w2;

  print_endline "\nsame load with DDIO disabled:\n";
  let config = { T.Hostconfig.default with T.Hostconfig.ddio = T.Hostconfig.Ddio_off } in
  let host_off = Host.create ~config Host.Two_socket in
  ignore (writer host_off "nic0");
  ignore (writer host_off "nic1");
  Host.run_for host_off (U.Units.ms 1.0);
  show host_off "two NICs writing:";

  (* the misconfiguration checker knows this is a bad idea *)
  print_endline "\nconfiguration check on the DDIO-off host:";
  List.iter (Printf.printf "  finding: %s\n") (Host.check_configuration host_off)
