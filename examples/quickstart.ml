(* Quickstart: build the Figure-1 server, look around with the
   diagnostic tools, run a workload, and ask for a guarantee.

   Run with: dune exec examples/quickstart.exe *)

open Ihnet
module T = Ihnet_topology
module U = Ihnet_util
module W = Ihnet_workload
module Mon = Ihnet_monitor
module R = Ihnet_manager

let () =
  (* 1. A host: the two-socket commodity server of the paper's Figure 1. *)
  let host = Host.create Host.Two_socket in
  Printf.printf "host: %s\n\n" (T.Topology.summary (Host.topology host));

  (* 2. Observability: the intra-host ping and traceroute. *)
  (match Host.ping host ~src:"nic0" ~dst:"dimm0.0.0" with
  | Some rtt -> Format.printf "ihping nic0 <-> dimm0.0.0: rtt %a@." U.Units.pp_time rtt
  | None -> print_endline "ihping: lost");
  print_endline "ihtrace ext -> dimm0.0.0:";
  List.iter
    (fun (h : Mon.Diagnostics.trace_hop) ->
      Format.printf "  -> %-12s %-16s base %a now %a@." h.Mon.Diagnostics.hop_device
        h.Mon.Diagnostics.link_kind U.Units.pp_time h.Mon.Diagnostics.base_latency
        U.Units.pp_time h.Mon.Diagnostics.loaded_latency)
    (Host.trace host ~src:"ext" ~dst:"dimm0.0.0");
  Format.printf "ihperf gpu0 -> ssd0: %a available@.@." U.Units.pp_rate
    (Host.bandwidth host ~src:"gpu0" ~dst:"ssd0");

  (* 3. A workload: a remote key-value store serving clients via nic0. *)
  let tenant = Host.add_tenant host ~name:"kv" in
  let kv =
    W.Kvstore.start (Host.fabric host)
      (W.Kvstore.default_config ~tenant:tenant.W.Tenant.id ~nic:"nic0")
  in
  Host.run_for host (U.Units.ms 20.0);
  let lat = W.Kvstore.latencies kv in
  Format.printf "kv store after 20 ms: %.0fk req/s, p50 %a, p99 %a@."
    (W.Kvstore.achieved_rate kv /. 1e3)
    U.Units.pp_time (U.Histogram.percentile lat 0.5)
    U.Units.pp_time (U.Histogram.percentile lat 0.99);

  (* 4. Manageability: ask the resource manager for an end-to-end
     guarantee; the arbiter shim protects the store automatically. *)
  (match
     Host.submit_intent host
       (R.Intent.pipe ~tenant:tenant.W.Tenant.id ~src:"ext" ~dst:"socket0"
          ~rate:(U.Units.gbps 4.0))
   with
  | Ok placements ->
    Format.printf "intent admitted: %d placement(s), %a guaranteed@."
      (List.length placements) U.Units.pp_rate
      (R.Manager.guaranteed_throughput (Option.get (Host.manager host))
         ~tenant:tenant.W.Tenant.id)
  | Error e -> Printf.printf "intent rejected: %s\n" (Manager.error_to_string e));
  Host.run_for host (U.Units.ms 10.0);

  (* 5. The tenant's virtualized view of the intra-host network. *)
  (match Host.manager host with
  | Some mgr ->
    let vnet = R.Manager.vnet mgr ~tenant:tenant.W.Tenant.id in
    Printf.printf "tenant vnet: %s\n" (T.Topology.summary vnet)
  | None -> ());
  W.Kvstore.stop kv;
  print_endline "\nquickstart done."
